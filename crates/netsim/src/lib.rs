//! # fib-netsim — deterministic data-plane and co-simulation
//!
//! The paper's demo ran on an emulated testbed (Mininet + Quagga).
//! This crate is its simulation substitute:
//!
//! * [`event`] — a deterministic discrete-event queue;
//! * [`link`] — capacitated, delayed, directed links;
//! * [`fib`] — downloaded forwarding tables and hop-by-hop path
//!   resolution with per-router ECMP hashing ([`ecmp`]);
//! * [`dirty`] — dirty-set invalidation tracking and the
//!   prefix → flows reverse index behind incremental recompute;
//! * [`fluid`] — max-min fair bandwidth sharing (the first-order model
//!   of competing TCP flows), with application rate caps;
//! * [`flow`] — traffic flows and notifications;
//! * [`trace`] — time-series recording and CSV export for figures;
//! * [`api`] / [`sim`] — the co-simulation world: real IGP instances
//!   exchanging encoded packets over the links, FIB downloads, SNMP
//!   agents fed by both planes, and pluggable applications (the
//!   Fibbing controller, video drivers, baselines).
//!
//! Everything is deterministic: identical inputs produce
//! byte-identical traces (asserted in tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod dirty;
pub mod ecmp;
pub mod event;
pub mod fib;
pub mod flow;
pub mod fluid;
pub mod link;
pub mod sim;
pub mod trace;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::api::{App, SimApi};
    pub use crate::ecmp::{slot_for, FlowKey};
    pub use crate::event::EventQueue;
    pub use crate::fib::{resolve_path, Fib, FibEntry, PathError};
    pub use crate::flow::{Flow, FlowId, FlowInfo, FlowSpec};
    pub use crate::fluid::{max_min_allocation, max_min_keyed, Allocation, Allocator, FluidFlow};
    pub use crate::link::{LinkInfo, LinkKey, LinkSpec, LinkState};
    pub use crate::sim::{Sim, SimConfig, SimStats};
    pub use crate::trace::Recorder;
    pub use fib_igp::time::{Dur, Timestamp};
}
