//! Path computation for flash-crowd relief.
//!
//! The controller answers: *given the current demands, which
//! per-destination forwarding DAG keeps every link below a utilization
//! budget, changing as little as possible?* Two primitives:
//!
//! * [`min_max_theta`] — the optimal (fractional) min-max link
//!   utilization for single-destination demands, by bisection over a
//!   max-flow feasibility oracle (Dinic). This is the theoretical
//!   optimum the paper cites ("Fibbing can implement the optimal
//!   solution to the min-max link utilization problem") and the
//!   reference for the optimality-gap table.
//!
//! * [`MinMaxSolver`] — the reusable engine behind [`min_max_theta`].
//!   The flow network is assembled **once** per problem; bisection
//!   probes rescale arc capacities in place and reuse the flow found
//!   so far (a feasible flow at θ stays feasible at θ′ > θ; scaling
//!   down only cancels the overflow on arcs the smaller θ saturates).
//!   A single max-flow at θ = 1 additionally yields an analytic lower
//!   bound from its min cut, shrinking the bisection window. Callers
//!   that need both a feasibility check and θ* (like [`plan_paths`])
//!   share one solver instead of rebuilding the network per question.
//!
//! * [`plan_paths`] — a *min-cost flow at a utilization budget*:
//!   capacities are scaled to `target_util`, arc costs are IGP
//!   metrics, and demand is routed at minimum total cost. Cheap
//!   (shortest) paths fill first; longer detours appear only when
//!   needed — reproducing the demo's behaviour where B gains B–R3–C
//!   before anyone touches the long A–R1–R4–C path. The fractional
//!   split is then rounded to ECMP slots ([`crate::splitting`]) and
//!   expressed as a [`WeightedDag`] for the augmentation engine.

use crate::requirements::WeightedDag;
use crate::splitting::plan_split;
use fib_igp::topology::Topology;
use fib_igp::types::{Metric, Prefix, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// Optimization failures.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// No router announces the prefix.
    NoSink(Prefix),
    /// The demand cannot be routed even at unbounded utilization.
    Disconnected,
    /// The demand exceeds capacity at any utilization ≤ `max_theta`.
    Infeasible {
        /// Best-possible max utilization.
        needed_theta: f64,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::NoSink(p) => write!(f, "no router announces {p}"),
            OptError::Disconnected => write!(f, "demand sources are disconnected from the sink"),
            OptError::Infeasible { needed_theta } => {
                write!(
                    f,
                    "infeasible below the θ ceiling (needs θ = {needed_theta:.3})"
                )
            }
        }
    }
}

impl std::error::Error for OptError {}

/// A computed path plan.
#[derive(Debug, Clone)]
pub struct PathPlan {
    /// Utilization budget the flow was computed at.
    pub theta_used: f64,
    /// Max link utilization of the fractional flow itself.
    pub max_util: f64,
    /// The rounded forwarding requirement.
    pub dag: WeightedDag,
    /// Fractional per-link loads of the plan (traffic units).
    pub loads: BTreeMap<(RouterId, RouterId), f64>,
}

// ---------------------------------------------------------------------
// Max-flow (Dinic) on f64 capacities.
// ---------------------------------------------------------------------

const EPS: f64 = 1e-9;

struct Dinic {
    to: Vec<usize>,
    cap: Vec<f64>,
    head: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Dinic {
        Dinic {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, c: f64) -> usize {
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.head[u].push(id);
        self.to.push(u);
        self.cap.push(0.0);
        self.head[v].push(id + 1);
        id
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = std::collections::VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &e in &self.head[u] {
                if self.cap[e] > EPS && self.level[self.to[e]] < 0 {
                    self.level[self.to[e]] = self.level[u] + 1;
                    q.push_back(self.to[e]);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: f64) -> f64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.head[u].len() {
            let e = self.head[u][self.iter[u]];
            let v = self.to[e];
            if self.cap[e] > EPS && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]));
                if d > EPS {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0.0
    }

    /// Augment from the current residual state until no path remains;
    /// returns the *additional* flow found (so warm starts compose).
    /// On return, `level` marks the source side of a min cut.
    fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// BFS a `from → to` path over forward arcs currently carrying
    /// flow; returns the arc ids along it (empty when `from == to`).
    fn flow_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(Vec::new());
        }
        let n = self.head.len();
        let mut prev = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        seen[from] = true;
        let mut q = std::collections::VecDeque::new();
        q.push_back(from);
        'bfs: while let Some(u) = q.pop_front() {
            for &e in &self.head[u] {
                // Even ids are forward arcs; their flow sits on the
                // paired reverse arc's capacity.
                if e % 2 == 0 && self.cap[e ^ 1] > EPS && !seen[self.to[e]] {
                    seen[self.to[e]] = true;
                    prev[self.to[e]] = e;
                    if self.to[e] == to {
                        break 'bfs;
                    }
                    q.push_back(self.to[e]);
                }
            }
        }
        if !seen[to] {
            return None;
        }
        let mut path = Vec::new();
        let mut node = to;
        while node != from {
            let e = prev[node];
            path.push(e);
            node = self.to[e ^ 1];
        }
        path.reverse();
        Some(path)
    }
}

// ---------------------------------------------------------------------
// Min-cost flow (successive shortest paths with Bellman–Ford).
// ---------------------------------------------------------------------

struct Mcmf {
    to: Vec<usize>,
    cap: Vec<f64>,
    cost: Vec<f64>,
    head: Vec<Vec<usize>>,
    n: usize,
}

impl Mcmf {
    fn new(n: usize) -> Mcmf {
        Mcmf {
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
            head: vec![Vec::new(); n],
            n,
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, c: f64, w: f64) -> usize {
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.cost.push(w);
        self.head[u].push(id);
        self.to.push(u);
        self.cap.push(0.0);
        self.cost.push(-w);
        self.head[v].push(id + 1);
        id
    }

    /// Route up to `want` units from s to t at minimum cost; returns
    /// the amount routed.
    fn run(&mut self, s: usize, t: usize, want: f64) -> f64 {
        let mut routed = 0.0;
        while routed < want - EPS {
            // Bellman–Ford over the residual network.
            let mut dist = vec![f64::INFINITY; self.n];
            let mut prev_edge = vec![usize::MAX; self.n];
            dist[s] = 0.0;
            for _ in 0..self.n {
                let mut improved = false;
                for u in 0..self.n {
                    if !dist[u].is_finite() {
                        continue;
                    }
                    for &e in &self.head[u] {
                        if self.cap[e] > EPS && dist[u] + self.cost[e] < dist[self.to[e]] - 1e-12 {
                            dist[self.to[e]] = dist[u] + self.cost[e];
                            prev_edge[self.to[e]] = e;
                            improved = true;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
            if !dist[t].is_finite() {
                break; // no augmenting path
            }
            // Bottleneck along the path.
            let mut push = want - routed;
            let mut v = t;
            while v != s {
                let e = prev_edge[v];
                push = push.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            if push <= EPS {
                break;
            }
            let mut v = t;
            while v != s {
                let e = prev_edge[v];
                self.cap[e] -= push;
                self.cap[e ^ 1] += push;
                v = self.to[e ^ 1];
            }
            routed += push;
        }
        routed
    }

    fn flow_on(&self, edge_id: usize) -> f64 {
        // Flow equals the reverse edge's accumulated capacity.
        self.cap[edge_id ^ 1]
    }
}

// ---------------------------------------------------------------------
// Problem assembly
// ---------------------------------------------------------------------

struct Problem {
    nodes: Vec<RouterId>,
    index: BTreeMap<RouterId, usize>,
    links: Vec<((RouterId, RouterId), f64, Metric)>, // key, capacity, metric
    sinks: Vec<RouterId>,
    demands: Vec<(RouterId, f64)>,
    total: f64,
}

fn assemble(
    topo: &Topology,
    prefix: Prefix,
    demands: &[(RouterId, f64)],
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
) -> Result<Problem, OptError> {
    let sinks: Vec<RouterId> = topo
        .all_announcements()
        .filter(|(r, p, _)| *p == prefix && r.is_real())
        .map(|(r, _, _)| r)
        .collect();
    if sinks.is_empty() {
        return Err(OptError::NoSink(prefix));
    }
    let nodes: Vec<RouterId> = topo.routers().collect();
    let index: BTreeMap<RouterId, usize> = nodes.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let mut links = Vec::new();
    for (from, to, metric) in topo.all_links() {
        if from.is_fake() || to.is_fake() {
            continue;
        }
        let Some(cap) = capacities.get(&(from, to)) else {
            continue; // links without provisioned capacity are unusable
        };
        links.push(((from, to), *cap, metric));
    }
    let demands: Vec<(RouterId, f64)> = demands
        .iter()
        .filter(|(r, d)| *d > EPS && !sinks.contains(r) && index.contains_key(r))
        .copied()
        .collect();
    let total: f64 = demands.iter().map(|(_, d)| d).sum();
    Ok(Problem {
        nodes,
        index,
        links,
        sinks,
        demands,
        total,
    })
}

/// Tolerance on routed flow vs. total demand when deciding
/// feasibility (absolute, in traffic units — the historical value).
const FLOW_TOL: f64 = 1e-6;

/// A reusable min-max utilization solver for one assembled problem.
///
/// The Dinic network (link arcs, source arcs carrying the demands,
/// infinite sink arcs) is built **once**. Every feasibility probe at a
/// utilization θ rescales the link-arc capacities in place and keeps
/// the flow already routed:
///
/// * scaling **up** only adds residual capacity, so the current flow
///   stays valid and the max-flow merely continues augmenting;
/// * scaling **down** keeps the flow wherever it still fits and
///   cancels just the overflow on arcs the smaller θ saturates,
///   walking it back to the source/sink along flow-carrying paths.
///
/// On top of the warm starts, the min cut of the very first max-flow
/// (at θ = 1) yields the analytic lower bound
/// `(total − cut_source_capacity) / cut_link_capacity ≤ θ*`, which
/// shrinks the bisection window before it starts. The same solver
/// answers both plain feasibility questions ([`Self::is_feasible`])
/// and the optimum ([`Self::theta_star`], cached), so callers such as
/// [`plan_paths`] assemble the problem exactly once.
pub struct MinMaxSolver {
    p: Problem,
    net: Dinic,
    s: usize,
    t: usize,
    /// `(arc id, unscaled capacity)` of every link arc.
    link_arcs: Vec<(usize, f64)>,
    /// `(arc id, demand)` of every source arc (for flow resets).
    demand_arcs: Vec<(usize, f64)>,
    /// Arc ids of the sink arcs (for flow resets).
    sink_arcs: Vec<usize>,
    /// Scale currently applied to the link arcs.
    theta: f64,
    /// Value of the flow currently routed.
    flow: f64,
    /// Memoized optimum.
    theta_star: Option<f64>,
}

impl MinMaxSolver {
    /// Assemble the flow network for routing `demands` toward `prefix`
    /// over `topo` with per-link `capacities`. Fails with
    /// [`OptError::NoSink`] when nothing announces the prefix.
    pub fn new(
        topo: &Topology,
        prefix: Prefix,
        demands: &[(RouterId, f64)],
        capacities: &BTreeMap<(RouterId, RouterId), f64>,
    ) -> Result<MinMaxSolver, OptError> {
        let p = assemble(topo, prefix, demands, capacities)?;
        let n = p.nodes.len();
        let (s, t) = (n, n + 1);
        let mut net = Dinic::new(n + 2);
        let mut link_arcs = Vec::with_capacity(p.links.len());
        for ((u, v), cap, _) in &p.links {
            let id = net.add_edge(p.index[u], p.index[v], *cap); // θ = 1
            link_arcs.push((id, *cap));
        }
        let mut demand_arcs = Vec::with_capacity(p.demands.len());
        for (src, d) in &p.demands {
            let id = net.add_edge(s, p.index[src], *d);
            demand_arcs.push((id, *d));
        }
        let mut sink_arcs = Vec::with_capacity(p.sinks.len());
        for sink in &p.sinks {
            sink_arcs.push(net.add_edge(p.index[sink], t, f64::INFINITY));
        }
        Ok(MinMaxSolver {
            p,
            net,
            s,
            t,
            link_arcs,
            demand_arcs,
            sink_arcs,
            theta: 1.0,
            flow: 0.0,
            theta_star: None,
        })
    }

    /// Total demand of the assembled problem (traffic units).
    pub fn total_demand(&self) -> f64 {
        self.p.total
    }

    /// The assembled problem (shared with `plan_paths`).
    fn problem(&self) -> &Problem {
        &self.p
    }

    /// Can all demand be routed with every link at or below `theta`
    /// utilization? Warm-starts from whatever flow previous probes
    /// left behind.
    pub fn is_feasible(&mut self, theta: f64) -> bool {
        let _span = fib_trace::span(fib_trace::Phase::SolverProbe);
        if self.p.total <= EPS {
            return true;
        }
        self.rescale(theta);
        self.flow += self.net.max_flow(self.s, self.t);
        self.flow >= self.p.total - FLOW_TOL
    }

    /// Rescale every link arc to `theta` × capacity, preserving the
    /// routed flow. Arcs whose flow no longer fits get the overflow
    /// cancelled; everything else keeps its flow and merely has its
    /// residual recomputed (so repeated rescaling never drifts).
    fn rescale(&mut self, theta: f64) {
        // Record θ up front: a reset inside `cancel_overflow` must
        // restore capacities at the *new* scale, or arcs processed
        // earlier in this loop would keep stale ones.
        self.theta = theta;
        for i in 0..self.link_arcs.len() {
            let (id, cap) = self.link_arcs[i];
            let target = theta * cap;
            let routed = self.net.cap[id ^ 1];
            if routed > target + EPS {
                self.cancel_overflow(id, routed - target);
            }
            let routed = self.net.cap[id ^ 1];
            self.net.cap[id] = (target - routed).max(0.0);
        }
    }

    /// Remove `excess` units of flow passing through arc `id` by
    /// walking the overflow back along flow-carrying paths (source →
    /// arc tail, arc head → sink). Falls back to a full flow reset in
    /// the pathological case where the flow support contains a cycle
    /// that hides such paths.
    fn cancel_overflow(&mut self, id: usize, mut excess: f64) {
        let (u, v) = (self.net.to[id ^ 1], self.net.to[id]);
        while excess > EPS {
            let (p1, p2) = (self.net.flow_path(self.s, u), self.net.flow_path(v, self.t));
            let (Some(p1), Some(p2)) = (p1, p2) else {
                // Flow cycle through the arc: no s→u / v→t witness.
                // Rare enough that rebuilding the flow is fine.
                self.reset_flow();
                return;
            };
            // An arc may appear on both path halves; the bottleneck
            // must account for pushing it back twice.
            let mut uses: BTreeMap<usize, f64> = BTreeMap::new();
            *uses.entry(id).or_insert(0.0) += 1.0;
            for e in p1.iter().chain(p2.iter()) {
                *uses.entry(*e).or_insert(0.0) += 1.0;
            }
            let mut push = excess;
            for (e, times) in &uses {
                push = push.min(self.net.cap[e ^ 1] / times);
            }
            if push <= EPS {
                self.reset_flow();
                return;
            }
            for (e, times) in &uses {
                let amount = push * times;
                self.net.cap[*e] += amount;
                self.net.cap[e ^ 1] -= amount;
            }
            self.flow -= push;
            excess -= push;
        }
    }

    /// Drop all routed flow, restoring nominal capacities at the
    /// current θ.
    fn reset_flow(&mut self) {
        for &(id, cap) in &self.link_arcs {
            self.net.cap[id] = self.theta * cap;
            self.net.cap[id ^ 1] = 0.0;
        }
        for &(id, d) in &self.demand_arcs {
            self.net.cap[id] = d;
            self.net.cap[id ^ 1] = 0.0;
        }
        for &id in &self.sink_arcs {
            self.net.cap[id] = f64::INFINITY;
            self.net.cap[id ^ 1] = 0.0;
        }
        self.flow = 0.0;
    }

    /// Source-arc and (unscaled) link-arc capacity crossing the min
    /// cut left behind by the last max-flow run.
    fn min_cut_parts(&self) -> (f64, f64) {
        let reachable = |node: usize| self.net.level[node] >= 0;
        let mut cut_src = 0.0;
        for &(id, d) in &self.demand_arcs {
            if !reachable(self.net.to[id]) {
                cut_src += d;
            }
        }
        let mut cut_links = 0.0;
        for &(id, cap) in &self.link_arcs {
            if reachable(self.net.to[id ^ 1]) && !reachable(self.net.to[id]) {
                cut_links += cap;
            }
        }
        (cut_src, cut_links)
    }

    /// The optimal min-max utilization θ* (memoized). Errors with
    /// [`OptError::Disconnected`] when some demand cannot reach the
    /// sink at any utilization.
    pub fn theta_star(&mut self) -> Result<f64, OptError> {
        if let Some(t) = self.theta_star {
            return Ok(t);
        }
        if self.p.total <= EPS {
            self.theta_star = Some(0.0);
            return Ok(0.0);
        }
        // One max-flow at θ = 1 seeds both the bisection window and
        // the analytic cut bound: every cut must satisfy
        // `cut_src + θ·cut_links ≥ total`.
        let feasible_at_one = self.is_feasible(1.0);
        let (cut_src, cut_links) = self.min_cut_parts();
        let bound = if cut_links > EPS {
            ((self.p.total - cut_src) / cut_links).max(0.0)
        } else {
            0.0
        };
        let (mut lo, mut hi);
        if feasible_at_one {
            hi = 1.0;
            lo = bound.min(1.0);
        } else {
            if cut_links <= EPS {
                // The binding cut has no link arcs: some demand can
                // never reach the sink, at any θ.
                return Err(OptError::Disconnected);
            }
            // Any θ below the cut bound is infeasible, so the window
            // starts there (θ = 1 was just probed infeasible too).
            lo = bound.max(1.0);
            let mut cand = lo;
            let mut grown = 0;
            loop {
                if self.is_feasible(cand) {
                    hi = cand;
                    break;
                }
                lo = cand;
                cand *= 2.0;
                grown += 1;
                if grown > 64 {
                    return Err(OptError::Disconnected);
                }
            }
        }
        for _ in 0..100 {
            if hi - lo <= 1e-9 * hi.max(1.0) {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if self.is_feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.theta_star = Some(hi);
        Ok(hi)
    }
}

/// Optimal min-max utilization θ* for routing `demands` toward
/// `prefix` (fractional, splittable flow). This is the paper's cited
/// lower bound. Convenience wrapper over [`MinMaxSolver`]; callers
/// with several questions about one problem should hold the solver.
pub fn min_max_theta(
    topo: &Topology,
    prefix: Prefix,
    demands: &[(RouterId, f64)],
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
) -> Result<f64, OptError> {
    MinMaxSolver::new(topo, prefix, demands, capacities)?.theta_star()
}

/// Compute a forwarding plan keeping every link at or below
/// `target_util`, preferring short (IGP-cheap) paths; falls back to
/// the best achievable utilization when the budget is infeasible (the
/// congestion is then unavoidable but minimized).
pub fn plan_paths(
    topo: &Topology,
    prefix: Prefix,
    demands: &[(RouterId, f64)],
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
    target_util: f64,
    slot_budget: u32,
) -> Result<PathPlan, OptError> {
    assert!(target_util > 0.0);
    let mut solver = MinMaxSolver::new(topo, prefix, demands, capacities)?;
    let mut dag = WeightedDag::new(prefix);
    if solver.total_demand() <= EPS {
        return Ok(PathPlan {
            theta_used: 0.0,
            max_util: 0.0,
            dag,
            loads: BTreeMap::new(),
        });
    }

    // Choose θ: the budget if feasible, else the min-max optimum
    // (slightly padded for numerical safety). One solver answers both
    // questions on one assembled network.
    let theta = if solver.is_feasible(target_util) {
        target_util
    } else {
        solver.theta_star()? * (1.0 + 1e-6)
    };
    let p = solver.problem();

    // Min-cost flow at θ.
    let n = p.nodes.len();
    let (s, t) = (n, n + 1);
    let mut mcmf = Mcmf::new(n + 2);
    let mut edge_ids: Vec<((RouterId, RouterId), usize)> = Vec::new();
    for ((u, v), cap, metric) in &p.links {
        let id = mcmf.add_edge(p.index[u], p.index[v], theta * cap, metric.0 as f64);
        edge_ids.push(((*u, *v), id));
    }
    for (src, d) in &p.demands {
        mcmf.add_edge(s, p.index[src], *d, 0.0);
    }
    for sink in &p.sinks {
        mcmf.add_edge(p.index[sink], t, f64::INFINITY, 0.0);
    }
    let routed = mcmf.run(s, t, p.total);
    if routed < p.total - 1e-6 {
        return Err(OptError::Infeasible {
            needed_theta: theta,
        });
    }

    // Per-link loads and per-router fractions.
    let mut loads: BTreeMap<(RouterId, RouterId), f64> = BTreeMap::new();
    for (key, id) in &edge_ids {
        let f = mcmf.flow_on(*id);
        if f > 1e-6 {
            loads.insert(*key, f);
        }
    }
    let mut max_util: f64 = 0.0;
    for (key, load) in &loads {
        if let Some(cap) = capacities.get(key) {
            max_util = max_util.max(load / cap);
        }
    }

    // Group out-flows per router, prune slivers, round to slots.
    let mut out: BTreeMap<RouterId, Vec<(RouterId, f64)>> = BTreeMap::new();
    for ((u, v), f) in &loads {
        out.entry(*u).or_default().push((*v, *f));
    }
    for (router, flows) in out {
        let total: f64 = flows.iter().map(|(_, f)| f).sum();
        if total <= 1e-6 {
            continue;
        }
        // Prune next-hops below 5% of the router's traffic (a lie per
        // sliver is not worth the FIB slot), then renormalize.
        let kept: Vec<(RouterId, f64)> = flows
            .iter()
            .filter(|(_, f)| *f / total >= 0.05)
            .copied()
            .collect();
        let kept_total: f64 = kept.iter().map(|(_, f)| f).sum();
        let fractions: Vec<f64> = kept.iter().map(|(_, f)| f / kept_total).collect();
        let plan = plan_split(&fractions, slot_budget.max(kept.len() as u32))
            .expect("fractions are normalized and positive");
        let hops: Vec<(RouterId, u32)> = kept
            .iter()
            .zip(plan.weights.iter())
            .map(|((nh, _), w)| (*nh, *w))
            .collect();
        dag.require(router, &hops);
    }

    Ok(PathPlan {
        theta_used: theta,
        max_util,
        dag,
        loads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::Metric;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// The paper's demo topology (Fig. 1a).
    /// A=1, B=2, R1=3, R2=4, R3=5, R4=6, C=7. Unlabeled weights are 1;
    /// B–R3, A–R1, R1–R4, R4–C carry weight 2.
    fn paper_topo() -> (Topology, Prefix) {
        let mut t = Topology::new();
        for i in 1..=7 {
            t.add_router(r(i));
        }
        let links = [
            (1, 2, 1), // A-B
            (2, 4, 1), // B-R2
            (4, 7, 1), // R2-C
            (2, 5, 2), // B-R3
            (5, 7, 1), // R3-C
            (1, 3, 2), // A-R1
            (3, 6, 2), // R1-R4
            (6, 7, 2), // R4-C
        ];
        for (a, b, m) in links {
            t.add_link_sym(r(a), r(b), Metric(m)).unwrap();
        }
        let blue = Prefix::net24(1);
        t.announce_prefix(r(7), blue, Metric::ZERO).unwrap();
        (t, blue)
    }

    fn caps_all(topo: &Topology, c: f64) -> BTreeMap<(RouterId, RouterId), f64> {
        topo.all_links().map(|(a, b, _)| ((a, b), c)).collect()
    }

    #[test]
    fn min_max_matches_paper_fig1d() {
        let (t, blue) = paper_topo();
        let caps = caps_all(&t, 100.0);
        // 100 units from A and 100 from B (Fig. 1b/1d).
        let theta = min_max_theta(&t, blue, &[(r(1), 100.0), (r(2), 100.0)], &caps).unwrap();
        // Fig. 1d achieves max load 66.7/100; the fractional optimum
        // is exactly 2/3 (200 units over three unit-capacity cuts).
        assert!((theta - 2.0 / 3.0).abs() < 1e-3, "theta {theta}");
    }

    #[test]
    fn plan_paths_reproduces_fig1d_splits() {
        let (t, blue) = paper_topo();
        let caps = caps_all(&t, 100.0);
        let plan = plan_paths(&t, blue, &[(r(1), 100.0), (r(2), 100.0)], &caps, 0.70, 8).unwrap();
        // A (=r1) splits 1/3 via B, 2/3 via R1 — the paper's uneven
        // split realized with 3 slots.
        let fr_a = plan.dag.fractions(r(1));
        assert!((fr_a[&r(2)] - 1.0 / 3.0).abs() < 0.15, "A via B: {fr_a:?}");
        assert!((fr_a[&r(3)] - 2.0 / 3.0).abs() < 0.15, "A via R1: {fr_a:?}");
        // B splits ~50/50 over R2 and R3 (the fB lie).
        let fr_b = plan.dag.fractions(r(2));
        assert!((fr_b[&r(4)] - 0.5).abs() < 0.15, "B via R2: {fr_b:?}");
        assert!((fr_b[&r(5)] - 0.5).abs() < 0.15, "B via R3: {fr_b:?}");
        assert!(plan.max_util <= 0.70 + 1e-6);
        assert_eq!(plan.dag.find_internal_loop(), None);
    }

    #[test]
    fn single_source_spills_to_second_path_only() {
        let (t, blue) = paper_topo();
        let caps = caps_all(&t, 100.0);
        // Only B sends (the demo at t=15): 100 units, budget 0.7 →
        // B must split over R2 and R3 but A's long path is untouched.
        let plan = plan_paths(&t, blue, &[(r(2), 100.0)], &caps, 0.70, 8).unwrap();
        assert!(plan.dag.hops(r(2)).is_some(), "B constrained");
        assert!(
            !plan.loads.contains_key(&(r(1), r(3))),
            "A–R1 must stay idle: {:?}",
            plan.loads
        );
        let fr_b = plan.dag.fractions(r(2));
        assert!(fr_b.contains_key(&r(4)) && fr_b.contains_key(&r(5)));
    }

    #[test]
    fn fits_on_shortest_path_when_demand_is_small() {
        let (t, blue) = paper_topo();
        let caps = caps_all(&t, 100.0);
        let plan = plan_paths(&t, blue, &[(r(2), 30.0)], &caps, 0.70, 8).unwrap();
        // All of B's traffic on B–R2–C; single next-hop, no split.
        let fr_b = plan.dag.fractions(r(2));
        assert_eq!(fr_b.len(), 1);
        assert!((fr_b[&r(4)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_budget_falls_back_to_min_max() {
        let (t, blue) = paper_topo();
        let caps = caps_all(&t, 100.0);
        // 200 units can't fit below θ=0.5; plan falls back to θ*≈2/3.
        let plan = plan_paths(&t, blue, &[(r(1), 100.0), (r(2), 100.0)], &caps, 0.5, 8).unwrap();
        assert!(plan.theta_used > 0.6 && plan.theta_used < 0.7);
    }

    #[test]
    fn no_sink_is_an_error() {
        let (t, _) = paper_topo();
        let caps = caps_all(&t, 100.0);
        let missing = Prefix::net24(99);
        assert!(matches!(
            min_max_theta(&t, missing, &[(r(1), 10.0)], &caps),
            Err(OptError::NoSink(_))
        ));
    }

    #[test]
    fn zero_demand_trivially_ok() {
        let (t, blue) = paper_topo();
        let caps = caps_all(&t, 100.0);
        let theta = min_max_theta(&t, blue, &[], &caps).unwrap();
        assert_eq!(theta, 0.0);
        let plan = plan_paths(&t, blue, &[], &caps, 0.7, 8).unwrap();
        assert!(plan.dag.entries.is_empty());
    }

    #[test]
    fn demand_beyond_capacity_reports_needed_theta() {
        // Line 1-2 with capacity 10, demand 100: θ*=10.
        let mut t = Topology::new();
        t.add_router(r(1));
        t.add_router(r(2));
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        let blue = Prefix::net24(1);
        t.announce_prefix(r(2), blue, Metric::ZERO).unwrap();
        let caps = caps_all(&t, 10.0);
        let theta = min_max_theta(&t, blue, &[(r(1), 100.0)], &caps).unwrap();
        assert!((theta - 10.0).abs() < 1e-3);
    }

    #[test]
    fn solver_is_reusable_across_probes() {
        let (t, blue) = paper_topo();
        let caps = caps_all(&t, 100.0);
        let mut solver =
            MinMaxSolver::new(&t, blue, &[(r(1), 100.0), (r(2), 100.0)], &caps).unwrap();
        // Down, up, down again: exercises both grow and shrink paths.
        assert!(!solver.is_feasible(0.5));
        assert!(solver.is_feasible(1.0));
        assert!(!solver.is_feasible(0.6));
        assert!(solver.is_feasible(0.7));
        let theta = solver.theta_star().unwrap();
        assert!((theta - 2.0 / 3.0).abs() < 1e-6, "theta {theta}");
        // Memoized and still consistent with later probes.
        assert_eq!(solver.theta_star().unwrap(), theta);
        assert!(solver.is_feasible(theta + 1e-3));
        assert!(!solver.is_feasible(theta - 1e-3));
    }

    /// The pre-solver implementation, kept verbatim as the oracle the
    /// rescaling solver is pinned against: a fresh Dinic network per
    /// bisection probe, doubling from θ = 1, 60 blind halvings of
    /// `[0, hi]`.
    mod fresh_reference {
        use super::super::*;

        fn feasible(p: &Problem, theta: f64) -> bool {
            if p.total <= EPS {
                return true;
            }
            let n = p.nodes.len();
            let (s, t) = (n, n + 1);
            let mut dinic = Dinic::new(n + 2);
            for ((u, v), cap, _) in &p.links {
                dinic.add_edge(p.index[u], p.index[v], theta * cap);
            }
            for (src, d) in &p.demands {
                dinic.add_edge(s, p.index[src], *d);
            }
            for sink in &p.sinks {
                dinic.add_edge(p.index[sink], t, f64::INFINITY);
            }
            dinic.max_flow(s, t) >= p.total - 1e-6
        }

        pub fn min_max_theta(
            topo: &Topology,
            prefix: Prefix,
            demands: &[(RouterId, f64)],
            capacities: &BTreeMap<(RouterId, RouterId), f64>,
        ) -> Result<f64, OptError> {
            let p = assemble(topo, prefix, demands, capacities)?;
            if p.total <= EPS {
                return Ok(0.0);
            }
            let mut hi = 1.0;
            let mut doubled = 0;
            while !feasible(&p, hi) {
                hi *= 2.0;
                doubled += 1;
                if doubled > 24 {
                    return Err(OptError::Disconnected);
                }
            }
            let mut lo = 0.0;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if feasible(&p, mid) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            Ok(hi)
        }
    }

    mod equivalence {
        use super::*;
        use fib_igp::builders::random_connected;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        type Scenario = (
            Topology,
            Prefix,
            Vec<(RouterId, f64)>,
            BTreeMap<(RouterId, RouterId), f64>,
        );

        /// A seeded random problem: connected topology, one sink,
        /// 1–3 demand sources, heterogeneous capacities.
        fn scenario(seed: u64, n: u32) -> Scenario {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut topo = random_connected(&mut rng, n, n / 2, 4);
            let routers: Vec<RouterId> = topo.routers().collect();
            let sink = routers[rng.gen_range(0..routers.len())];
            let prefix = Prefix::net24(1);
            topo.announce_prefix(sink, prefix, Metric::ZERO).unwrap();
            let n_dem = rng.gen_range(1..=3usize);
            let mut demands: Vec<(RouterId, f64)> = Vec::new();
            while demands.len() < n_dem.min(routers.len() - 1) {
                let s = routers[rng.gen_range(0..routers.len())];
                if s != sink && !demands.iter().any(|(r, _)| *r == s) {
                    demands.push((s, rng.gen_range(20.0..250.0)));
                }
            }
            let caps: BTreeMap<(RouterId, RouterId), f64> = topo
                .all_links()
                .map(|(a, b, _)| ((a, b), rng.gen_range(40.0..160.0)))
                .collect();
            (topo, prefix, demands, caps)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The rescaling solver's θ* matches the fresh-bisection
            /// oracle within 1e-6 on seeded random topologies.
            #[test]
            fn rescaling_solver_matches_fresh_bisection(seed in 0u64..4000, n in 4u32..16) {
                let (topo, prefix, demands, caps) = scenario(seed, n);
                let fresh = fresh_reference::min_max_theta(&topo, prefix, &demands, &caps);
                let fast = min_max_theta(&topo, prefix, &demands, &caps);
                match (fresh, fast) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!((a - b).abs() <= 1e-6 * a.max(1.0),
                            "fresh {a} vs solver {b}");
                    }
                    (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                    (a, b) => prop_assert!(false, "diverged: fresh {a:?} vs solver {b:?}"),
                }
            }

            /// Warm-started probes (including shrink-after-grow) agree
            /// with fresh feasibility at unambiguous θ values around θ*.
            #[test]
            fn warm_probes_match_known_optimum(seed in 0u64..4000, n in 4u32..12) {
                let (topo, prefix, demands, caps) = scenario(seed, n);
                let Ok(star) = fresh_reference::min_max_theta(&topo, prefix, &demands, &caps)
                else { return Ok(()); };
                let mut solver = MinMaxSolver::new(&topo, prefix, &demands, &caps).unwrap();
                // Zig-zag order exercises grow, shrink, and re-grow.
                for (k, expect) in [
                    (2.0, true), (0.5, false), (1.5, true),
                    (0.8, false), (1.1, true), (0.9, false),
                ] {
                    let got = solver.is_feasible(k * star);
                    prop_assert!(got == expect, "probe at {k}·θ* (θ* = {star}): {got}");
                }
                let solved = solver.theta_star().unwrap();
                prop_assert!((solved - star).abs() <= 1e-6 * star.max(1.0));
            }
        }
    }
}
