//! Topology augmentation: computing the lies that realize a
//! requirement.
//!
//! Three algorithms, mirroring the structure of the original Fibbing
//! work (Vissicchio et al., SIGCOMM 2015):
//!
//! * **Equal-cost planning** — when a requirement only *adds*
//!   next-hops (or re-weights a superset of the IGP's natural ECMP
//!   set), lies are injected at exactly the router's current shortest
//!   cost. In this model such lies are provably side-effect-free: a
//!   remote router that sees the lie at equal cost already had the
//!   corresponding first hops by optimal substructure, and next-hop
//!   sets deduplicate by forwarding address. This is the cheap path
//!   the demo exercises (fB at B, fA×2 at A).
//!
//! * **Override planning with pin fixpoint** — when a requirement
//!   *removes* natural next-hops, lies must undercut the IGP's best
//!   cost, which *is* globally visible. The planner then iteratively
//!   detects disturbed unconstrained routers and pins them (restores
//!   their original next-hop sets with further lies) until a fixpoint
//!   — a faithful analogue of the paper's "Simple" algorithm, which
//!   sidesteps the analysis by constraining every router on the path.
//!
//! * **Greedy reduction (Merger-style)** — drop per-router lie groups
//!   whose removal leaves the requirement satisfied and everyone else
//!   undisturbed, shrinking Simple's output toward the demo's minimal
//!   plans.
//!
//! # Loop safety
//!
//! A requirement may name a next-hop whose *own* shortest path returns
//! through the constrained router; realizing it slot-by-slot would
//! compose into a forwarding loop even though no individual router's
//! routes were disturbed. [`augment`] always verifies the composed
//! forwarding graph and refuses such plans with
//! [`AugmentError::VerificationFailed`] (carrying the loop witness).
//! Plans derived from flows — like [`crate::optimizer::plan_paths`]
//! output — are inherently acyclic and never hit this; hand-written
//! requirements should prefer downstream next-hops or constrain the
//! full path as the Simple algorithm does.

use crate::lie::{apply_all, Lie, LieAllocator};
use crate::requirements::WeightedDag;
use crate::verify::{check_preserving, VerifyReport};
use fib_igp::spf::compute_routes;
use fib_igp::topology::Topology;
use fib_igp::types::{Metric, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// Augmentation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum AugmentError {
    /// The requirement has an internal cycle.
    RequirementLoop(Vec<RouterId>),
    /// A required next-hop is not a physical neighbor of the router.
    NotNeighbor {
        /// Constrained router.
        router: RouterId,
        /// Offending next-hop.
        nexthop: RouterId,
    },
    /// The router cannot reach the prefix at all.
    Unreachable(RouterId),
    /// Override planning needs a cost below the representable minimum.
    CostUnderflow(RouterId),
    /// The pin cascade failed to stabilize.
    NoFixpoint,
    /// The final plan failed verification (internal bug guard).
    VerificationFailed(Box<VerifyReport>),
}

impl fmt::Display for AugmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AugmentError::RequirementLoop(cycle) => {
                let parts: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
                write!(f, "requirement loops: {}", parts.join(" -> "))
            }
            AugmentError::NotNeighbor { router, nexthop } => {
                write!(f, "{nexthop} is not a neighbor of {router}")
            }
            AugmentError::Unreachable(r) => write!(f, "{r} cannot reach the prefix"),
            AugmentError::CostUnderflow(r) => {
                write!(f, "cannot undercut the shortest path at {r} (cost floor)")
            }
            AugmentError::NoFixpoint => write!(f, "pin cascade did not stabilize"),
            AugmentError::VerificationFailed(rep) => {
                write!(f, "verification failed: {rep}")
            }
        }
    }
}

impl std::error::Error for AugmentError {}

/// A computed augmentation.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The lies to inject.
    pub lies: Vec<Lie>,
    /// The requirement actually enforced, including pins the planner
    /// added to contain override side effects.
    pub effective_dag: WeightedDag,
    /// Routers pinned beyond the original requirement.
    pub pinned: Vec<RouterId>,
}

impl Plan {
    /// Number of lies per attachment router.
    pub fn lies_by_router(&self) -> BTreeMap<RouterId, usize> {
        let mut out = BTreeMap::new();
        for l in &self.lies {
            *out.entry(l.attach).or_insert(0) += 1;
        }
        out
    }
}

/// Natural (IGP) next-hop routers of `r` toward the prefix on `topo`,
/// with slot counts.
fn natural_hops(
    topo: &Topology,
    r: RouterId,
    prefix: fib_igp::types::Prefix,
) -> Vec<(RouterId, u32)> {
    let table = compute_routes(topo, r);
    match table.route(prefix) {
        Some(route) if !route.local => {
            let mut counts: BTreeMap<RouterId, u32> = BTreeMap::new();
            for h in &route.nexthops {
                *counts.entry(h.router).or_insert(0) += 1;
            }
            counts.into_iter().collect()
        }
        _ => Vec::new(),
    }
}

fn natural_dist(topo: &Topology, r: RouterId, prefix: fib_igp::types::Prefix) -> Option<Metric> {
    compute_routes(topo, r)
        .route(prefix)
        .map(|route| route.dist)
}

/// Plan lies for one router on `base` (the topology augmented with
/// every *other* router's lies). Returns `(lies, used_override)`.
fn plan_for_router(
    base: &Topology,
    r: RouterId,
    desired: &[(RouterId, u32)],
    prefix: fib_igp::types::Prefix,
    alloc: &mut LieAllocator,
) -> Result<(Vec<Lie>, bool), AugmentError> {
    // Validate adjacency (forwarding addresses must be neighbors).
    for (nh, _) in desired {
        if !base.has_link(r, *nh) {
            return Err(AugmentError::NotNeighbor {
                router: r,
                nexthop: *nh,
            });
        }
    }
    let dist = natural_dist(base, r, prefix).ok_or(AugmentError::Unreachable(r))?;
    if !dist.is_finite() {
        return Err(AugmentError::Unreachable(r));
    }
    let natural = natural_hops(base, r, prefix);
    let natural_routers: Vec<RouterId> = natural.iter().map(|(n, _)| *n).collect();
    let desired_map: BTreeMap<RouterId, u32> = desired.iter().copied().collect();

    // Equal-cost is applicable iff every natural next-hop keeps at
    // least the weight its natural slots give it (we cannot remove
    // slots without undercutting), i.e. the natural slot count per
    // router is <= desired weight, scaled: since natural gives exactly
    // one primary slot per router, the condition is desired ⊇ natural
    // AND the desired weights are achievable by *adding* fake slots:
    // desired_weight(nh) >= 1 for nh in natural. One more subtlety:
    // the natural slots impose ratio floor 1 slot; desired total T and
    // natural router n must satisfy weight(n) >= 1 — always true when
    // present. However fractions only match if we can top up every
    // next-hop to desired weight: extra(nh) = weight - (1 if natural).
    let equal_cost_ok = natural_routers.iter().all(|n| desired_map.contains_key(n));

    if equal_cost_ok {
        let mut lies = Vec::new();
        for (nh, w) in desired {
            let free = u32::from(natural_routers.contains(nh));
            for _ in free..*w {
                lies.push(alloc.make(r, *nh, prefix, dist));
            }
        }
        return Ok((lies, false));
    }

    // Override: undercut the natural cost by one.
    if dist.0 <= 1 {
        return Err(AugmentError::CostUnderflow(r));
    }
    let cost = Metric(dist.0 - 1);
    let mut lies = Vec::new();
    for (nh, w) in desired {
        for _ in 0..*w {
            lies.push(alloc.make(r, *nh, prefix, cost));
        }
    }
    Ok((lies, true))
}

/// Signature of a lie plan for change detection (ignores fake ids).
fn plan_signature(lies: &[Lie]) -> Vec<(RouterId, RouterId, Metric)> {
    let mut sig: Vec<(RouterId, RouterId, Metric)> = lies
        .iter()
        .map(|l| (l.attach, l.fw.router, l.cost_at_attach()))
        .collect();
    sig.sort();
    sig
}

/// Compute an augmentation realizing `dag` on the real topology
/// `topo` (which must contain no fake nodes).
pub fn augment(
    topo: &Topology,
    dag: &WeightedDag,
    alloc: &mut LieAllocator,
) -> Result<Plan, AugmentError> {
    assert_eq!(topo.fake_count(), 0, "augment() expects the real topology");
    if let Some(cycle) = dag.find_internal_loop() {
        return Err(AugmentError::RequirementLoop(cycle));
    }
    let prefix = dag.prefix;
    let mut working = dag.clone();
    let mut pinned: Vec<RouterId> = Vec::new();
    let mut lies_by_router: BTreeMap<RouterId, Vec<Lie>> = BTreeMap::new();

    // Baseline fractions for side-effect detection.
    let baseline = crate::verify::actual_fractions(topo, prefix);

    let max_iter = topo.router_count() + 2;
    let mut stable = false;
    for _iter in 0..max_iter {
        let mut changed = false;

        // (Re)plan every constrained router against the others' lies.
        let constrained: Vec<RouterId> = working.routers().collect();
        for r in &constrained {
            let others: Vec<Lie> = lies_by_router
                .iter()
                .filter(|(attach, _)| **attach != *r)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            let base = apply_all(topo, &others);
            let desired = working.hops(*r).cloned().unwrap_or_default();
            let (new_lies, _override_used) = plan_for_router(&base, *r, &desired, prefix, alloc)?;
            let old_sig =
                plan_signature(lies_by_router.get(r).map(|v| v.as_slice()).unwrap_or(&[]));
            if plan_signature(&new_lies) != old_sig {
                lies_by_router.insert(*r, new_lies);
                changed = true;
            }
        }

        // Detect disturbed unconstrained routers and pin them.
        let all_lies: Vec<Lie> = lies_by_router.values().flatten().copied().collect();
        let augmented = apply_all(topo, &all_lies);
        let actual = crate::verify::actual_fractions(&augmented, prefix);
        for (u, base_fr) in &baseline {
            if working.hops(*u).is_some() {
                continue;
            }
            let now_fr = actual.get(u).cloned().unwrap_or_default();
            let same = base_fr.len() == now_fr.len()
                && base_fr
                    .iter()
                    .all(|(k, v)| now_fr.get(k).map(|w| (v - w).abs() < 1e-9).unwrap_or(false));
            if !same {
                // Pin u to its original next-hop routers, one slot each.
                let hops: Vec<(RouterId, u32)> = natural_hops(topo, *u, prefix);
                if hops.is_empty() {
                    return Err(AugmentError::Unreachable(*u));
                }
                working.require(*u, &hops);
                pinned.push(*u);
                changed = true;
            }
        }

        if !changed {
            stable = true;
            break;
        }
    }
    if !stable {
        return Err(AugmentError::NoFixpoint);
    }

    let lies: Vec<Lie> = lies_by_router.values().flatten().copied().collect();
    let augmented = apply_all(topo, &lies);
    let report = check_preserving(topo, &augmented, &working);
    if !report.ok() {
        return Err(AugmentError::VerificationFailed(Box::new(report)));
    }
    Ok(Plan {
        lies,
        effective_dag: working,
        pinned,
    })
}

/// The paper's "Simple" augmentation: pin *every* router in the DAG
/// with cost-1 lies (each router prefers its own fakes outright). The
/// DAG must cover every router expected to carry traffic; routers
/// outside it will forward toward the nearest constrained router.
pub fn augment_simple(
    topo: &Topology,
    dag: &WeightedDag,
    alloc: &mut LieAllocator,
) -> Result<Vec<Lie>, AugmentError> {
    if let Some(cycle) = dag.find_internal_loop() {
        return Err(AugmentError::RequirementLoop(cycle));
    }
    let mut lies = Vec::new();
    for r in dag.routers() {
        let desired = dag.hops(r).cloned().unwrap_or_default();
        for (nh, w) in &desired {
            if !topo.has_link(r, *nh) {
                return Err(AugmentError::NotNeighbor {
                    router: r,
                    nexthop: *nh,
                });
            }
            for _ in 0..*w {
                lies.push(alloc.make(r, *nh, dag.prefix, Metric(1)));
            }
        }
    }
    Ok(lies)
}

/// Merger-style greedy reduction: drop per-router lie groups whose
/// removal keeps (a) the original requirement satisfied and (b) every
/// other router at its real-topology fractions.
pub fn reduce(topo: &Topology, dag: &WeightedDag, lies: &[Lie]) -> Vec<Lie> {
    let mut groups: BTreeMap<RouterId, Vec<Lie>> = BTreeMap::new();
    for l in lies {
        groups.entry(l.attach).or_default().push(*l);
    }
    let attaches: Vec<RouterId> = groups.keys().copied().collect();
    for attach in attaches {
        let removed = groups.remove(&attach).expect("group exists");
        let candidate: Vec<Lie> = groups.values().flatten().copied().collect();
        let augmented = apply_all(topo, &candidate);
        let report = check_preserving(topo, &augmented, dag);
        if !report.ok() {
            groups.insert(attach, removed); // keep the group
        }
    }
    groups.into_values().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::Prefix;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Triangle: 1-2 (1), 2-3 (1), 1-3 (5); prefix at r3.
    fn triangle() -> Topology {
        let mut t = Topology::new();
        for i in 1..=3 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(3), Metric(1)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(5)).unwrap();
        t.announce_prefix(r(3), Prefix::net24(1), Metric::ZERO)
            .unwrap();
        t
    }

    #[test]
    fn equal_cost_addition_is_planned_without_pins() {
        let topo = triangle();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        // Keep the natural hop (r2) and add the direct r3 link 50/50.
        dag.require(r(1), &[(r(2), 1), (r(3), 1)]);
        let mut alloc = LieAllocator::new();
        let plan = augment(&topo, &dag, &mut alloc).expect("plan");
        assert!(plan.pinned.is_empty(), "equal-cost must not pin");
        assert_eq!(plan.lies.len(), 1);
        assert_eq!(plan.lies[0].attach, r(1));
        assert_eq!(plan.lies[0].fw.router, r(3));
        assert_eq!(plan.lies[0].cost_at_attach(), Metric(2));
    }

    #[test]
    fn uneven_weights_create_replicated_lies() {
        let topo = triangle();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        // 1/3 via r2 (natural), 2/3 via r3 → 2 fakes on r3.
        dag.require(r(1), &[(r(2), 1), (r(3), 2)]);
        let mut alloc = LieAllocator::new();
        let plan = augment(&topo, &dag, &mut alloc).expect("plan");
        assert_eq!(plan.lies.len(), 2);
        assert!(plan.lies.iter().all(|l| l.fw.router == r(3)));
        // Distinct gateway addresses → distinct ECMP slots.
        assert_ne!(plan.lies[0].fw, plan.lies[1].fw);
    }

    #[test]
    fn removal_requires_override_and_pins_disturbed_routers() {
        // Square: 1-2 (1), 2-4 (1), 1-3 (2), 3-4 (2); prefix at 4.
        // r1's natural path: via r2 (cost 2). Requirement: r1 must use
        // ONLY r3 — removal of a natural hop → override.
        let mut topo = Topology::new();
        for i in 1..=4 {
            topo.add_router(r(i));
        }
        topo.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        topo.add_link_sym(r(2), r(4), Metric(1)).unwrap();
        topo.add_link_sym(r(1), r(3), Metric(2)).unwrap();
        topo.add_link_sym(r(3), r(4), Metric(2)).unwrap();
        topo.announce_prefix(r(4), Prefix::net24(1), Metric::ZERO)
            .unwrap();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(3), 1)]);
        let mut alloc = LieAllocator::new();
        let plan = augment(&topo, &dag, &mut alloc).expect("plan");
        let augmented = apply_all(&topo, &plan.lies);
        let report = check_preserving(&topo, &augmented, &plan.effective_dag);
        assert!(report.ok(), "{report}");
        // The requirement itself must hold.
        let fr = crate::verify::actual_fractions(&augmented, Prefix::net24(1));
        assert_eq!(fr[&r(1)].len(), 1);
        assert!((fr[&r(1)][&r(3)] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_neighbor_requirement_is_rejected() {
        let mut topo = triangle();
        // r4 hangs off r3 only; r1 cannot use it as a next-hop.
        topo.add_router(r(4));
        topo.add_link_sym(r(3), r(4), Metric(1)).unwrap();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(4), 1)]);
        let mut alloc = LieAllocator::new();
        assert!(matches!(
            augment(&topo, &dag, &mut alloc),
            Err(AugmentError::NotNeighbor { .. })
        ));
    }

    #[test]
    fn simple_pins_every_router() {
        let topo = triangle();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 1), (r(3), 1)]);
        dag.require(r(2), &[(r(3), 1)]);
        let mut alloc = LieAllocator::new();
        let lies = augment_simple(&topo, &dag, &mut alloc).expect("simple");
        assert_eq!(lies.len(), 3);
        assert!(lies.iter().all(|l| l.cost_at_attach() == Metric(1)));
        let augmented = apply_all(&topo, &lies);
        let report = crate::verify::check(&augmented, &dag);
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn reduce_drops_redundant_lies() {
        let topo = triangle();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        // r2's requirement is its natural behaviour; r1 adds a path.
        dag.require(r(1), &[(r(2), 1), (r(3), 1)]);
        dag.require(r(2), &[(r(3), 1)]);
        let mut alloc = LieAllocator::new();
        // Start from the simple (everything pinned) plan... which uses
        // cost-1 lies that *do* disturb unconstrained routers, so
        // reduction must keep what is needed to satisfy `dag` while
        // restoring everyone else. Build instead from the principled
        // plan plus a redundant equal-cost lie at r2.
        let plan = augment(&topo, &dag, &mut alloc).expect("plan");
        let reduced = reduce(&topo, &dag, &plan.lies);
        // r2's natural behaviour needs no lies; only r1's lie remains.
        assert_eq!(reduced.len(), 1);
        assert_eq!(reduced[0].attach, r(1));
        let augmented = apply_all(&topo, &reduced);
        assert!(check_preserving(&topo, &augmented, &dag).ok());
    }

    #[test]
    fn upstream_nexthop_composing_a_loop_is_refused() {
        // Line: 1 - 2 - 3 - 4, prefix at 4. Requiring r2 to also use
        // r1 sends traffic to a router whose own path returns through
        // r2 — a composed forwarding loop. No single router's routes
        // are disturbed, but the plan must still be refused.
        let mut topo = Topology::new();
        for i in 1..=4 {
            topo.add_router(r(i));
        }
        topo.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        topo.add_link_sym(r(2), r(3), Metric(1)).unwrap();
        topo.add_link_sym(r(3), r(4), Metric(1)).unwrap();
        topo.announce_prefix(r(4), Prefix::net24(1), Metric::ZERO)
            .unwrap();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(2), &[(r(3), 1), (r(1), 1)]);
        let mut alloc = LieAllocator::new();
        match augment(&topo, &dag, &mut alloc) {
            Err(AugmentError::VerificationFailed(report)) => {
                assert!(report.forwarding_loop.is_some(), "{report}");
            }
            other => panic!("expected loop refusal, got {other:?}"),
        }
    }

    #[test]
    fn requirement_loop_is_rejected() {
        let topo = triangle();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 1)]);
        dag.require(r(2), &[(r(1), 1)]);
        let mut alloc = LieAllocator::new();
        assert!(matches!(
            augment(&topo, &dag, &mut alloc),
            Err(AugmentError::RequirementLoop(_))
        ));
    }

    #[test]
    fn equal_cost_lies_never_disturb_others_property() {
        // Property-style test over random graphs: adding equal-cost
        // lies at one router leaves every other router's fractions
        // untouched.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..25 {
            let topo0 = fib_igp::builders::random_connected(&mut rng, 12, 8, 4);
            let mut topo = topo0.clone();
            let sink = RouterId(rng.gen_range(1..=12));
            let prefix = Prefix::net24(1);
            topo.announce_prefix(sink, prefix, Metric::ZERO).unwrap();
            // Pick a router with a route and a neighbor to add.
            let candidates: Vec<RouterId> = topo.routers().filter(|x| *x != sink).collect();
            let r0 = candidates[rng.gen_range(0..candidates.len())];
            let dist = natural_dist(&topo, r0, prefix).unwrap();
            if !dist.is_finite() || dist.0 < 1 {
                continue;
            }
            let nbrs: Vec<RouterId> = topo
                .links(r0)
                .iter()
                .map(|l| l.to)
                .filter(|n| n.is_real())
                .collect();
            let nh = nbrs[rng.gen_range(0..nbrs.len())];
            let mut alloc = LieAllocator::new();
            let lie = alloc.make(r0, nh, prefix, dist);
            let before = crate::verify::actual_fractions(&topo, prefix);
            let aug = apply_all(&topo, &[lie]);
            let after = crate::verify::actual_fractions(&aug, prefix);
            for (u, fr) in &before {
                if *u == r0 {
                    continue;
                }
                assert_eq!(
                    Some(fr),
                    after.get(u),
                    "case {case}: equal-cost lie at {r0} disturbed {u}"
                );
            }
        }
    }
}
