//! Verification: does an augmented topology realize a requirement?
//!
//! The checker recomputes every router's routes on the augmented
//! topology and compares *traffic fractions per next-hop router*
//! (slot-multiset ratios) against the requirement; unconstrained
//! routers must keep the fractions they had on the real topology.
//! It also proves the resulting forwarding state is loop-free.

use crate::requirements::WeightedDag;
use fib_igp::rib::{ForwardingDag, Route};
use fib_igp::spf::prefix_routes;
use fib_igp::topology::Topology;
use fib_igp::types::{Prefix, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// Tolerance for fraction comparisons.
const TOL: f64 = 1e-9;

/// One router whose forwarding does not match expectations.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// The router.
    pub router: RouterId,
    /// Expected fraction per next-hop router.
    pub expected: BTreeMap<RouterId, f64>,
    /// Actual fraction per next-hop router.
    pub actual: BTreeMap<RouterId, f64>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {:?}, got {:?}",
            self.router, self.expected, self.actual
        )
    }
}

/// Outcome of a verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Prefix checked.
    pub prefix: Prefix,
    /// Routers violating their expectation.
    pub mismatches: Vec<Mismatch>,
    /// A forwarding loop, if one exists.
    pub forwarding_loop: Option<Vec<RouterId>>,
}

impl VerifyReport {
    /// `true` when the requirement is fully realized and loop-free.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty() && self.forwarding_loop.is_none()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            return write!(f, "requirement for {} realized", self.prefix);
        }
        writeln!(f, "requirement for {} NOT realized:", self.prefix)?;
        for m in &self.mismatches {
            writeln!(f, "  {m}")?;
        }
        if let Some(cycle) = &self.forwarding_loop {
            let parts: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
            writeln!(f, "  loop: {}", parts.join(" -> "))?;
        }
        Ok(())
    }
}

fn fractions_close(a: &BTreeMap<RouterId, f64>, b: &BTreeMap<RouterId, f64>) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter()
        .all(|(k, v)| b.get(k).map(|w| (v - w).abs() <= TOL).unwrap_or(false))
}

/// Actual per-next-hop-router fractions of every router toward
/// `prefix` on `topo`.
///
/// Computed from the single-prefix reverse SPF
/// ([`fib_igp::spf::prefix_routes`]) rather than a full per-router
/// forward SPF: the verifier — the hot path of controller planning —
/// only ever inspects one destination at a time.
pub fn actual_fractions(
    topo: &Topology,
    prefix: Prefix,
) -> BTreeMap<RouterId, BTreeMap<RouterId, f64>> {
    fractions_of(&prefix_routes(topo, prefix))
}

/// Non-local per-router fractions derived from single-prefix routes.
fn fractions_of(routes: &BTreeMap<RouterId, Route>) -> BTreeMap<RouterId, BTreeMap<RouterId, f64>> {
    routes
        .iter()
        .filter(|(_, route)| !route.local)
        .map(|(r, route)| (*r, route.split_by_router()))
        .collect()
}

/// The realized forwarding DAG for one prefix (local routes become
/// empty next-hop sets, i.e. sinks).
fn dag_of(prefix: Prefix, routes: &BTreeMap<RouterId, Route>) -> ForwardingDag {
    ForwardingDag::from_prefix_routes(prefix, routes)
}

/// Verify `augmented` realizes `dag`, with every unconstrained router
/// keeping the fractions it has on `real`.
pub fn check_preserving(real: &Topology, augmented: &Topology, dag: &WeightedDag) -> VerifyReport {
    let aug_routes = prefix_routes(augmented, dag.prefix);
    let actual = fractions_of(&aug_routes);
    let baseline = actual_fractions(real, dag.prefix);
    let mut mismatches = Vec::new();

    // Constrained routers must match the requirement.
    for r in dag.routers() {
        let expected = dag.fractions(r);
        let got = actual.get(&r).cloned().unwrap_or_default();
        if !fractions_close(&expected, &got) {
            mismatches.push(Mismatch {
                router: r,
                expected,
                actual: got,
            });
        }
    }
    // Unconstrained routers must be undisturbed.
    for (r, expected) in &baseline {
        if dag.hops(*r).is_some() {
            continue;
        }
        let got = actual.get(r).cloned().unwrap_or_default();
        if !fractions_close(expected, &got) {
            mismatches.push(Mismatch {
                router: *r,
                expected: expected.clone(),
                actual: got,
            });
        }
    }

    // Loop freedom of the realized forwarding state.
    let forwarding_loop = dag_of(dag.prefix, &aug_routes).find_loop();

    VerifyReport {
        prefix: dag.prefix,
        mismatches,
        forwarding_loop,
    }
}

/// Verify only that `augmented` realizes `dag` (no preservation check).
pub fn check(augmented: &Topology, dag: &WeightedDag) -> VerifyReport {
    let aug_routes = prefix_routes(augmented, dag.prefix);
    let actual = fractions_of(&aug_routes);
    let mut mismatches = Vec::new();
    for r in dag.routers() {
        let expected = dag.fractions(r);
        let got = actual.get(&r).cloned().unwrap_or_default();
        if !fractions_close(&expected, &got) {
            mismatches.push(Mismatch {
                router: r,
                expected,
                actual: got,
            });
        }
    }
    VerifyReport {
        prefix: dag.prefix,
        mismatches,
        forwarding_loop: dag_of(dag.prefix, &aug_routes).find_loop(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::topology::FakeAttrs;
    use fib_igp::types::{FwAddr, Metric};

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    fn triangle() -> Topology {
        // 1-2 cost 1, 2-3 cost 1, 1-3 cost 5; prefix at 3.
        let mut t = Topology::new();
        for i in 1..=3 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(3), Metric(1)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(5)).unwrap();
        t.announce_prefix(r(3), Prefix::net24(1), Metric::ZERO)
            .unwrap();
        t
    }

    #[test]
    fn natural_topology_fails_uneven_requirement() {
        let t = triangle();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 1), (r(3), 1)]);
        let report = check(&t, &dag);
        assert!(!report.ok());
        assert_eq!(report.mismatches.len(), 1);
        assert_eq!(report.mismatches[0].router, r(1));
        assert!(report.to_string().contains("NOT realized"));
    }

    #[test]
    fn lie_realizes_requirement_and_preserves_others() {
        let real = triangle();
        let mut aug = real.clone();
        // Equal-cost lie at r1 (cost 2) via the direct r3 link.
        aug.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(1),
                fw: FwAddr::secondary(r(3), 1),
            },
        )
        .unwrap();
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 1), (r(3), 1)]);
        let report = check_preserving(&real, &aug, &dag);
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn disturbing_unconstrained_router_is_caught() {
        let real = triangle();
        let mut aug = real.clone();
        // A *cheaper* lie at r1 (cost 1) changes r2? No — r2's own
        // path is cost 1 via r3 directly; r2 sees r1's lie at
        // dist(r1)+1 = 2 > 1. Instead disturb r2 directly: lie at r2
        // via r1 at cost 1, equal to its natural cost → r2 gains a
        // slot it should not have.
        aug.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(2),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(0),
                fw: FwAddr::secondary(r(1), 1),
            },
        )
        .unwrap();
        let dag = WeightedDag::new(Prefix::net24(1)); // no constraints
        let report = check_preserving(&real, &aug, &dag);
        assert!(!report.ok());
        assert_eq!(report.mismatches[0].router, r(2));
    }

    #[test]
    fn forwarding_loop_is_reported() {
        // Requirement loops are impossible through SPF on a fixed
        // augmented topology (costs strictly decrease), so synthesize
        // a loop check through the DAG directly: use two lies that
        // point traffic at each other *via cheaper-than-real costs*.
        // On a line 1-2-3 with prefix at 3, lie at r2 via r1 at cost 0
        // would be needed to loop — cost 0 lies are unrepresentable
        // (metrics >= 1 on the attach link), so instead assert the
        // checker's loop detector on a hand-built cycle.
        let mut dag_nexthops = BTreeMap::new();
        dag_nexthops.insert(r(1), vec![FwAddr::primary(r(2))]);
        dag_nexthops.insert(r(2), vec![FwAddr::primary(r(1))]);
        let fdag = ForwardingDag {
            prefix: Prefix::net24(1),
            nexthops: dag_nexthops,
        };
        assert!(fdag.find_loop().is_some());
    }

    #[test]
    fn fractions_comparison_tolerates_equivalent_multisets() {
        let real = triangle();
        let mut aug = real.clone();
        // Two lies at r1 via r3 and one extra via r2 → slots
        // [r2, r2#1, r3#1, r3#2] = 1:1 fractions... build requirement
        // 2:2 and check fraction equivalence (2:2 == 1:1).
        aug.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(1),
                fw: FwAddr::secondary(r(2), 1),
            },
        )
        .unwrap();
        for k in 1..=2u32 {
            aug.add_fake_node(
                RouterId::fake(k),
                FakeAttrs {
                    attach: r(1),
                    attach_metric: Metric(1),
                    prefix: Prefix::net24(1),
                    prefix_metric: Metric(1),
                    fw: FwAddr::secondary(r(3), k as u16),
                },
            )
            .unwrap();
        }
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 3), (r(3), 3)]); // same fractions as 2:2
        let report = check(&aug, &dag);
        assert!(report.ok(), "{report}");
    }
}
