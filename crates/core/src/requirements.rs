//! The controller's requirement language: weighted forwarding DAGs.
//!
//! A [`WeightedDag`] states, per router, which next-hop routers should
//! carry its traffic toward a prefix and in what integer slot
//! proportions. It is the interface between the optimizer (which
//! produces fractional splits and rounds them) and the augmentation
//! engine (which realizes the DAG with lies).

use fib_igp::types::{Prefix, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// Desired weighted next-hops for one router.
pub type WeightedHops = Vec<(RouterId, u32)>;

/// A per-destination weighted forwarding requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedDag {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Per-router desired `(next-hop router, slots)`. Routers absent
    /// from the map are unconstrained.
    pub entries: BTreeMap<RouterId, WeightedHops>,
}

impl WeightedDag {
    /// An empty requirement for `prefix`.
    pub fn new(prefix: Prefix) -> WeightedDag {
        WeightedDag {
            prefix,
            entries: BTreeMap::new(),
        }
    }

    /// Require `router` to split over `hops` (router, weight) pairs.
    /// Weights must be >= 1; duplicate next-hops are merged by summing.
    pub fn require(&mut self, router: RouterId, hops: &[(RouterId, u32)]) -> &mut Self {
        let mut merged: BTreeMap<RouterId, u32> = BTreeMap::new();
        for (nh, w) in hops {
            assert!(*w >= 1, "weights must be at least 1");
            *merged.entry(*nh).or_insert(0) += w;
        }
        self.entries.insert(router, merged.into_iter().collect());
        self
    }

    /// The constrained routers.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.entries.keys().copied()
    }

    /// Desired hops at one router.
    pub fn hops(&self, router: RouterId) -> Option<&WeightedHops> {
        self.entries.get(&router)
    }

    /// Total desired slots at one router.
    pub fn total_slots(&self, router: RouterId) -> u32 {
        self.entries
            .get(&router)
            .map(|h| h.iter().map(|(_, w)| *w).sum())
            .unwrap_or(0)
    }

    /// Desired traffic fraction per next-hop at one router.
    pub fn fractions(&self, router: RouterId) -> BTreeMap<RouterId, f64> {
        let mut out = BTreeMap::new();
        if let Some(hops) = self.entries.get(&router) {
            let total: u32 = hops.iter().map(|(_, w)| *w).sum();
            if total > 0 {
                for (nh, w) in hops {
                    out.insert(*nh, *w as f64 / total as f64);
                }
            }
        }
        out
    }

    /// Check the requirement is internally loop-free: following any
    /// weighted edge never returns to a constrained router already on
    /// the walk. Unconstrained routers terminate the walk (their
    /// behaviour is the IGP's, assumed loop-free).
    pub fn find_internal_loop(&self) -> Option<Vec<RouterId>> {
        for start in self.entries.keys() {
            let mut stack = vec![(*start, vec![*start])];
            while let Some((cur, path)) = stack.pop() {
                if let Some(hops) = self.entries.get(&cur) {
                    for (nh, _) in hops {
                        if path.contains(nh) {
                            let mut cycle = path.clone();
                            cycle.push(*nh);
                            return Some(cycle);
                        }
                        let mut next_path = path.clone();
                        next_path.push(*nh);
                        stack.push((*nh, next_path));
                    }
                }
            }
        }
        None
    }
}

impl fmt::Display for WeightedDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requirement for {}:", self.prefix)?;
        for (r, hops) in &self.entries {
            let parts: Vec<String> = hops.iter().map(|(nh, w)| format!("{nh}x{w}")).collect();
            writeln!(f, "  {r} -> [{}]", parts.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    #[test]
    fn require_merges_duplicates() {
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 1), (r(3), 2), (r(2), 1)]);
        assert_eq!(dag.hops(r(1)).unwrap(), &vec![(r(2), 2), (r(3), 2)]);
        assert_eq!(dag.total_slots(r(1)), 4);
    }

    #[test]
    fn fractions_normalize() {
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 1), (r(3), 2)]);
        let fr = dag.fractions(r(1));
        assert!((fr[&r(2)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((fr[&r(3)] - 2.0 / 3.0).abs() < 1e-12);
        assert!(dag.fractions(r(9)).is_empty());
    }

    #[test]
    fn internal_loop_detection() {
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 1)]);
        dag.require(r(2), &[(r(1), 1)]);
        assert!(dag.find_internal_loop().is_some());

        let mut ok = WeightedDag::new(Prefix::net24(1));
        ok.require(r(1), &[(r(2), 1), (r(3), 1)]);
        ok.require(r(2), &[(r(3), 1)]);
        assert_eq!(ok.find_internal_loop(), None);
    }

    #[test]
    fn display_lists_entries() {
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 2)]);
        let s = dag.to_string();
        assert!(s.contains("r1 -> [r2x2]"));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_weight_panics() {
        let mut dag = WeightedDag::new(Prefix::net24(1));
        dag.require(r(1), &[(r(2), 0)]);
    }
}
