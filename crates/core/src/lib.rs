//! # fib-core — Fibbing: central control over distributed routing
//!
//! The paper's contribution: a controller that steers an unmodified
//! link-state network by injecting *lies* — fake nodes and links — so
//! that routers' own SPF computations produce the paths the controller
//! wants. This crate implements:
//!
//! * [`lie`] — the lie abstraction and collision-free allocation;
//! * [`requirements`] — weighted forwarding-DAG requirements;
//! * [`splitting`] — uneven ECMP split synthesis (fractions → integer
//!   slot counts, the paper's "uneven splitting ratios with no
//!   data-plane overhead");
//! * [`augmentation`] — computing lies that realize a requirement:
//!   side-effect-free equal-cost planning, override planning with a
//!   pin fixpoint (≈ SIGCOMM'15 "Simple"), and Merger-style greedy
//!   reduction;
//! * [`optimizer`] — min-cost flow at a utilization budget plus the
//!   optimal min-max θ* lower bound the paper cites;
//! * [`verify`] — proof that an augmented topology realizes a
//!   requirement without disturbing anyone else, and loop-freedom;
//! * [`controller`] — the demo's on-demand load-balancing controller
//!   (SNMP monitoring + server notifications → lies), pluggable into
//!   the `fib-netsim` co-simulation.
//!
//! ## Quick example
//!
//! ```
//! use fib_core::prelude::*;
//! use fib_igp::prelude::*;
//!
//! // Triangle: 1-2 (1), 2-3 (1), 1-3 (5); prefix at r3.
//! let mut topo = Topology::new();
//! for i in 1..=3 { topo.add_router(RouterId(i)); }
//! topo.add_link_sym(RouterId(1), RouterId(2), Metric(1)).unwrap();
//! topo.add_link_sym(RouterId(2), RouterId(3), Metric(1)).unwrap();
//! topo.add_link_sym(RouterId(1), RouterId(3), Metric(5)).unwrap();
//! let blue = Prefix::net24(1);
//! topo.announce_prefix(RouterId(3), blue, Metric::ZERO).unwrap();
//!
//! // Require r1 to split 1/3 via r2, 2/3 via r3.
//! let mut dag = WeightedDag::new(blue);
//! dag.require(RouterId(1), &[(RouterId(2), 1), (RouterId(3), 2)]);
//!
//! let mut alloc = LieAllocator::new();
//! let plan = augment(&topo, &dag, &mut alloc).unwrap();
//! assert_eq!(plan.lies.len(), 2); // two fakes via r3's addresses
//!
//! // Prove it.
//! let augmented = apply_all(&topo, &plan.lies);
//! assert!(check_preserving(&topo, &augmented, &dag).ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod augmentation;
pub mod controller;
pub mod lie;
pub mod optimizer;
pub mod requirements;
pub mod splitting;
pub mod verify;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::augmentation::{augment, augment_simple, reduce, AugmentError, Plan};
    pub use crate::controller::{
        ControllerConfig, ControllerHandle, ControllerSnapshot, ControllerStats, FibbingController,
    };
    pub use crate::lie::{apply_all, Lie, LieAllocator};
    pub use crate::optimizer::{min_max_theta, plan_paths, MinMaxSolver, OptError, PathPlan};
    pub use crate::requirements::{WeightedDag, WeightedHops};
    pub use crate::splitting::{apportion, min_slots_for, plan_split, SplitError, SplitPlan};
    pub use crate::verify::{actual_fractions, check, check_preserving, Mismatch, VerifyReport};
}
