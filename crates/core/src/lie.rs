//! Lies: the unit of Fibbing control.
//!
//! A [`Lie`] describes one fake node: where it attaches, what it
//! announces at what cost, and which forwarding address the attachment
//! router resolves it to. Lies compile 1:1 to fake LSAs
//! ([`fib_igp::lsa::LsaBody::Fake`]) and can be applied directly to a
//! [`Topology`] for offline planning/verification.
//!
//! [`LieAllocator`] hands out collision-free fake node ids and
//! secondary forwarding-address indexes (each lie at a given router
//! resolving to the same neighbor needs a distinct gateway address to
//! occupy its own ECMP slot).

use fib_igp::topology::{FakeAttrs, Topology};
use fib_igp::types::{FwAddr, Metric, Prefix, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// One fake node to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lie {
    /// Fake node identifier (in the fake id range).
    pub fake_id: RouterId,
    /// Real router the fake node hangs off.
    pub attach: RouterId,
    /// Metric of the directed `attach → fake` link.
    pub attach_metric: Metric,
    /// The prefix the lie announces.
    pub prefix: Prefix,
    /// Announcement metric at the fake node.
    pub prefix_metric: Metric,
    /// Gateway the fake next-hop resolves to at `attach`.
    pub fw: FwAddr,
}

impl Lie {
    /// The total cost of the prefix via this lie as seen at the
    /// attachment router.
    pub fn cost_at_attach(&self) -> Metric {
        self.attach_metric.add(self.prefix_metric)
    }

    /// The fake-node attributes to install into a topology.
    pub fn attrs(&self) -> FakeAttrs {
        FakeAttrs {
            attach: self.attach,
            attach_metric: self.attach_metric,
            prefix: self.prefix,
            prefix_metric: self.prefix_metric,
            fw: self.fw,
        }
    }

    /// Apply the lie to a topology (offline planning view).
    pub fn apply(&self, topo: &mut Topology) -> Result<(), fib_igp::error::TopologyError> {
        topo.add_fake_node(self.fake_id, self.attrs())
    }
}

impl fmt::Display for Lie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lie {}@{}: {} cost {} via {}",
            self.fake_id,
            self.attach,
            self.prefix,
            self.cost_at_attach(),
            self.fw
        )
    }
}

/// Apply a whole plan to a copy of the topology.
pub fn apply_all(topo: &Topology, lies: &[Lie]) -> Topology {
    let mut t = topo.clone();
    for lie in lies {
        lie.apply(&mut t).expect("lie must be applicable");
    }
    t
}

/// Allocates fake ids and secondary address indexes without collisions.
#[derive(Debug, Default)]
pub struct LieAllocator {
    next_fake: u32,
    // (attach, fw router) → next secondary address index.
    next_addr: BTreeMap<(RouterId, RouterId), u16>,
}

impl LieAllocator {
    /// A fresh allocator.
    pub fn new() -> LieAllocator {
        LieAllocator::default()
    }

    /// An allocator whose fake ids start at `base` (to avoid clashing
    /// with lies injected by earlier plans still in the network).
    pub fn starting_at(base: u32) -> LieAllocator {
        LieAllocator {
            next_fake: base,
            next_addr: BTreeMap::new(),
        }
    }

    /// Next unused fake node id.
    pub fn fake_id(&mut self) -> RouterId {
        let id = RouterId::fake(self.next_fake);
        self.next_fake += 1;
        id
    }

    /// Next unused secondary address of `fw_router` for lies attached
    /// at `attach` (indexes start at 1; 0 is the primary address).
    pub fn fw_addr(&mut self, attach: RouterId, fw_router: RouterId) -> FwAddr {
        let slot = self.next_addr.entry((attach, fw_router)).or_insert(1);
        let fw = FwAddr::secondary(fw_router, *slot);
        *slot += 1;
        fw
    }

    /// Build a complete lie announcing `prefix` at `attach` with the
    /// given total cost (split 1 + rest between link and announcement)
    /// resolving to a fresh secondary address of `nexthop`.
    pub fn make(
        &mut self,
        attach: RouterId,
        nexthop: RouterId,
        prefix: Prefix,
        total_cost: Metric,
    ) -> Lie {
        // Always 1 on the attach link; the remainder (saturating, so a
        // zero total cost stays well-formed) goes on the announcement.
        let attach_metric = Metric(1);
        let prefix_metric = total_cost.sub(attach_metric);
        Lie {
            fake_id: self.fake_id(),
            attach,
            attach_metric,
            prefix,
            prefix_metric,
            fw: self.fw_addr(attach, nexthop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    #[test]
    fn allocator_never_collides() {
        let mut a = LieAllocator::new();
        let f1 = a.fake_id();
        let f2 = a.fake_id();
        assert_ne!(f1, f2);
        assert!(f1.is_fake() && f2.is_fake());
        let w1 = a.fw_addr(r(1), r(2));
        let w2 = a.fw_addr(r(1), r(2));
        let w3 = a.fw_addr(r(3), r(2));
        assert_ne!(w1, w2);
        // Different attach routers may reuse indexes (different FIBs).
        assert_eq!(w3.addr, 1);
        assert!(w1.addr >= 1 && w2.addr >= 1);
    }

    #[test]
    fn make_splits_cost() {
        let mut a = LieAllocator::new();
        let lie = a.make(r(1), r(2), Prefix::net24(1), Metric(5));
        assert_eq!(lie.cost_at_attach(), Metric(5));
        assert_eq!(lie.attach_metric, Metric(1));
        assert_eq!(lie.prefix_metric, Metric(4));
        assert_eq!(lie.fw.router, r(2));
        assert!(lie.fw.addr >= 1);
    }

    #[test]
    fn make_handles_cost_one() {
        let mut a = LieAllocator::new();
        let lie = a.make(r(1), r(2), Prefix::net24(1), Metric(1));
        assert_eq!(lie.cost_at_attach(), Metric(1));
    }

    #[test]
    fn apply_installs_fake_node() {
        let mut topo = Topology::new();
        topo.add_router(r(1));
        topo.add_router(r(2));
        topo.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        let mut a = LieAllocator::new();
        let lie = a.make(r(1), r(2), Prefix::net24(1), Metric(2));
        let augmented = apply_all(&topo, &[lie]);
        assert_eq!(augmented.fake_count(), 1);
        assert_eq!(
            augmented.fake_attrs(lie.fake_id).unwrap().cost_at_attach(),
            Metric(2)
        );
        assert!(format!("{lie}").contains("via r2#1"));
    }

    #[test]
    fn starting_at_skips_ids() {
        let mut a = LieAllocator::starting_at(100);
        assert_eq!(a.fake_id(), RouterId::fake(100));
    }
}
