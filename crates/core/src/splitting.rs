//! Uneven-split synthesis: fractions → ECMP slot counts.
//!
//! Fibbing realizes a fractional split at a router by giving each
//! next-hop an integer number of ECMP slots (fake nodes resolving to
//! distinct gateway addresses). The synthesis problem: given target
//! fractions and a slot budget, pick integer weights whose normalized
//! shares best approximate the targets. More slots = better accuracy
//! but more lies (and FIB entries) — the accuracy/state trade-off is
//! one of the benchmarks (ablation of the paper's "no data-plane
//! overhead" claim).
//!
//! The search enumerates slot totals and apportions each with the
//! largest-remainder method, which minimizes L∞ error for a fixed
//! total; the best total within budget wins.

use std::fmt;

/// An integer apportionment of ECMP slots approximating fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    /// Slot counts, parallel to the input fractions. Every entry >= 1.
    pub weights: Vec<u32>,
    /// Total slots (sum of weights).
    pub total: u32,
    /// Maximum absolute error |weight/total - fraction|.
    pub max_error: f64,
}

impl fmt::Display for SplitPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.weights.iter().map(|w| w.to_string()).collect();
        write!(
            f,
            "{} (total {}, err {:.4})",
            parts.join(":"),
            self.total,
            self.max_error
        )
    }
}

/// Errors from split planning.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitError {
    /// Fractions were empty, non-positive, or did not sum to ~1.
    BadFractions,
    /// The slot budget cannot cover one slot per next-hop.
    BudgetTooSmall {
        /// Next-hops requested.
        need: usize,
        /// Budget given.
        budget: u32,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::BadFractions => write!(f, "fractions must be positive and sum to 1"),
            SplitError::BudgetTooSmall { need, budget } => {
                write!(f, "budget {budget} cannot cover {need} next-hops")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// Largest-remainder apportionment of `total` slots to `fractions`,
/// guaranteeing at least one slot each.
pub fn apportion(fractions: &[f64], total: u32) -> Vec<u32> {
    let n = fractions.len() as u32;
    assert!(total >= n, "total must cover one slot per entry");
    // Reserve one slot each, apportion the rest by largest remainder
    // of the *excess* ideal share.
    let spare = total - n;
    let ideals: Vec<f64> = fractions
        .iter()
        .map(|f| (f * total as f64 - 1.0).max(0.0))
        .collect();
    let mut base: Vec<u32> = ideals.iter().map(|i| i.floor() as u32).collect();
    let assigned: u32 = base.iter().sum();
    let spare_left = spare.saturating_sub(assigned);
    // Rank by remainder, stable on index for determinism.
    let mut order: Vec<usize> = (0..fractions.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = ideals[a] - ideals[a].floor();
        let rb = ideals[b] - ideals[b].floor();
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for i in 0..(spare_left as usize).min(order.len()) {
        base[order[i]] += 1;
    }
    // Distribute any residual round-off (can happen with degenerate
    // fractions) deterministically.
    let mut sum: u32 = base.iter().sum::<u32>() + n;
    let mut idx = 0;
    while sum < total {
        base[order[idx % order.len()]] += 1;
        sum += 1;
        idx += 1;
    }
    while sum > total {
        let i = order[idx % order.len()];
        if base[i] > 0 {
            base[i] -= 1;
            sum -= 1;
        }
        idx += 1;
    }
    base.iter().map(|b| b + 1).collect()
}

fn linf_error(fractions: &[f64], weights: &[u32]) -> f64 {
    let total: u32 = weights.iter().sum();
    fractions
        .iter()
        .zip(weights)
        .map(|(f, w)| (*w as f64 / total as f64 - f).abs())
        .fold(0.0, f64::max)
}

/// Find the best slot plan for `fractions` within a total-slot budget.
///
/// Ties on error prefer fewer slots (fewer lies).
pub fn plan_split(fractions: &[f64], budget: u32) -> Result<SplitPlan, SplitError> {
    if fractions.is_empty() || fractions.iter().any(|f| *f <= 0.0) {
        return Err(SplitError::BadFractions);
    }
    let sum: f64 = fractions.iter().sum();
    if (sum - 1.0).abs() > 1e-6 {
        return Err(SplitError::BadFractions);
    }
    let n = fractions.len() as u32;
    if budget < n {
        return Err(SplitError::BudgetTooSmall {
            need: fractions.len(),
            budget,
        });
    }
    let mut best: Option<SplitPlan> = None;
    for total in n..=budget {
        let weights = apportion(fractions, total);
        debug_assert_eq!(weights.iter().sum::<u32>(), total);
        let err = linf_error(fractions, &weights);
        let better = match &best {
            None => true,
            Some(b) => err < b.max_error - 1e-12,
        };
        if better {
            best = Some(SplitPlan {
                weights,
                total,
                max_error: err,
            });
        }
    }
    Ok(best.expect("at least one total examined"))
}

/// Smallest slot total achieving L∞ error ≤ `eps` (searching up to
/// `max_budget`); `None` if unreachable within the budget.
pub fn min_slots_for(fractions: &[f64], eps: f64, max_budget: u32) -> Option<SplitPlan> {
    let n = fractions.len() as u32;
    for total in n..=max_budget {
        let weights = apportion(fractions, total);
        let err = linf_error(fractions, &weights);
        if err <= eps {
            return Some(SplitPlan {
                weights,
                total,
                max_error: err,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_thirds() {
        let plan = plan_split(&[1.0 / 3.0, 2.0 / 3.0], 8).unwrap();
        assert_eq!(plan.weights, vec![1, 2]);
        assert_eq!(plan.total, 3);
        assert!(plan.max_error < 1e-9);
    }

    #[test]
    fn even_split_needs_two() {
        let plan = plan_split(&[0.5, 0.5], 16).unwrap();
        assert_eq!(plan.weights, vec![1, 1]);
        assert!(plan.max_error < 1e-9);
    }

    #[test]
    fn budget_too_small() {
        assert!(matches!(
            plan_split(&[0.2, 0.3, 0.5], 2),
            Err(SplitError::BudgetTooSmall { need: 3, budget: 2 })
        ));
    }

    #[test]
    fn bad_fractions_rejected() {
        assert!(plan_split(&[], 4).is_err());
        assert!(plan_split(&[0.5, 0.4], 4).is_err());
        assert!(plan_split(&[1.2, -0.2], 4).is_err());
    }

    #[test]
    fn awkward_fraction_improves_with_budget() {
        let fr = [0.45, 0.55];
        let small = plan_split(&fr, 4).unwrap();
        let large = plan_split(&fr, 32).unwrap();
        assert!(large.max_error <= small.max_error);
        assert!(large.max_error < 0.03);
    }

    #[test]
    fn min_slots_monotone_in_eps() {
        let fr = [0.1, 0.9];
        let strict = min_slots_for(&fr, 0.01, 64).unwrap();
        let loose = min_slots_for(&fr, 0.2, 64).unwrap();
        assert!(loose.total <= strict.total);
        assert_eq!(strict.weights.iter().sum::<u32>(), strict.total);
    }

    #[test]
    fn min_slots_unreachable_returns_none() {
        // 1/1000 share cannot be approximated within 1e-6 with ≤ 8 slots.
        assert!(min_slots_for(&[0.001, 0.999], 1e-6, 8).is_none());
    }

    proptest! {
        /// Apportionment always sums to the requested total, gives
        /// everyone at least one slot, and bounded error shrinks with
        /// total (sanity: L∞ ≤ 1).
        #[test]
        fn prop_apportion_sums(raw in proptest::collection::vec(0.05f64..1.0, 1..6),
                               extra in 0u32..24) {
            let sum: f64 = raw.iter().sum();
            let fractions: Vec<f64> = raw.iter().map(|v| v / sum).collect();
            let total = fractions.len() as u32 + extra;
            let w = apportion(&fractions, total);
            prop_assert_eq!(w.iter().sum::<u32>(), total);
            prop_assert!(w.iter().all(|x| *x >= 1));
        }

        /// plan_split respects the budget and never errs worse than the
        /// trivial uniform plan.
        #[test]
        fn prop_plan_within_budget(raw in proptest::collection::vec(0.05f64..1.0, 2..5)) {
            let sum: f64 = raw.iter().sum();
            let fractions: Vec<f64> = raw.iter().map(|v| v / sum).collect();
            let budget = 12u32;
            let plan = plan_split(&fractions, budget).unwrap();
            prop_assert!(plan.total <= budget);
            let uniform = apportion(&fractions, fractions.len() as u32);
            let uniform_err = super::linf_error(&fractions, &uniform);
            prop_assert!(plan.max_error <= uniform_err + 1e-12);
        }
    }
}
