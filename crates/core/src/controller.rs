//! The Fibbing controller of the demo (Sec. 3 of the paper).
//!
//! The controller is an ordinary IGP speaker attached to one router
//! (R3 in the demo). It:
//!
//! 1. **monitors link loads using SNMP** — polling ifOutOctets at a
//!    fixed interval through the telemetry pipeline (EWMA rates,
//!    hysteresis alarms), and
//! 2. **is notified by the servers when they have a new client** —
//!    flow notifications feed a demand book, letting the controller
//!    react *predictively*: it spreads the known demands over the
//!    forwarding state in its own LSDB and acts when the predicted
//!    utilization crosses the threshold, typically before queues
//!    build.
//!
//! Reaction: compute a path plan (min-cost flow at the utilization
//! budget, [`crate::optimizer::plan_paths`]), realize it with lies
//! ([`crate::augmentation::augment`]), optionally reduce the lie set,
//! and reconcile with what is already installed (inject new lies,
//! retract obsolete ones). When demand subsides so the *natural*
//! (lie-free) routing would stay below the low watermark, every lie is
//! retracted and the network falls back to its original state.

use crate::augmentation::{augment, reduce};
use crate::lie::{Lie, LieAllocator};
use fib_igp::loadmodel::{max_utilization, spread, Demand};
use fib_igp::time::Dur;
use fib_igp::types::{Prefix, RouterId};
use fib_netsim::flow::{FlowId, FlowInfo};
use fib_netsim::handler::{AppEvent, EventHandler};
use fib_netsim::link::LinkKey;
use fib_netsim::sim::SimContext;
use fib_telemetry::alarm::{Edge, Threshold};
use fib_telemetry::counters::CounterWidth;
use fib_telemetry::mib::{oids, Value};
use fib_telemetry::monitor::LoadMonitor;
use fib_trace::{AuditAction, AuditRecord};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Controller tuning knobs.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// The controller's IGP speaker id (added to the simulation via
    /// [`fib_netsim::sim::Sim::add_controller_speaker`]).
    pub speaker: RouterId,
    /// Tick/poll cadence.
    pub poll_interval: Dur,
    /// Utilization (predicted or measured) that triggers a reaction.
    pub util_hi: f64,
    /// Natural utilization below which lies are retracted.
    pub util_lo: f64,
    /// Hold-down for the SNMP alarm path.
    pub hold: Dur,
    /// Utilization budget handed to the optimizer.
    pub target_util: f64,
    /// Max ECMP slots per router when rounding splits.
    pub slot_budget: u32,
    /// EWMA weight for SNMP rates.
    pub ewma_alpha: f64,
    /// Demand assumed for flows announcing no rate cap.
    pub default_flow_rate: f64,
    /// Run the Merger-style reduction on computed plans.
    pub reduce_lies: bool,
    /// React to flow notifications immediately (predictive mode); if
    /// `false` the controller only reacts to SNMP alarms — the
    /// ablation the reaction-time table quantifies.
    pub predictive: bool,
    /// Poll SNMP counters (can be disabled for pure-predictive runs).
    pub use_snmp: bool,
    /// Record the installed-lie count as the `ctrl.lies` trace series
    /// after every evaluation (consumed by the scenario engine; off by
    /// default so figure traces stay unchanged).
    pub trace_lies: bool,
}

impl ControllerConfig {
    /// Defaults mirroring the demo: 1 s polling, react at 80%
    /// predicted utilization, optimize to 70%, retract below 30%.
    pub fn new(speaker: RouterId) -> ControllerConfig {
        ControllerConfig {
            speaker,
            poll_interval: Dur::from_secs(1),
            util_hi: 0.8,
            util_lo: 0.3,
            hold: Dur::ZERO,
            target_util: 0.7,
            slot_budget: 8,
            ewma_alpha: 0.5,
            default_flow_rate: 125_000.0, // 1 Mb/s video
            reduce_lies: true,
            predictive: true,
            use_snmp: true,
            trace_lies: false,
        }
    }
}

/// Observable controller counters (reaction-time and overhead tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Reactions computed (plan attempts on congestion).
    pub reactions: u64,
    /// Lies injected.
    pub injections: u64,
    /// Lies retracted.
    pub retractions: u64,
    /// SNMP poll sweeps performed.
    pub snmp_sweeps: u64,
    /// Evaluations (trigger checks) performed.
    pub evaluations: u64,
    /// Plans that failed (optimizer or augmentation error).
    pub failures: u64,
}

/// A live view of the controller, published through
/// [`FibbingController::watch`] after every evaluation — how the
/// scenario engine reads reaction counts out of a running simulation
/// (the controller itself is owned by the simulator once added).
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerSnapshot {
    /// Counters at the last evaluation.
    pub stats: ControllerStats,
    /// Lies currently installed across all prefixes.
    pub installed_lies: usize,
}

/// Shared handle to the latest [`ControllerSnapshot`].
pub type ControllerHandle = Arc<Mutex<ControllerSnapshot>>;

/// The demo's Fibbing controller (a netsim [`EventHandler`]
/// component).
pub struct FibbingController {
    cfg: ControllerConfig,
    monitor: LoadMonitor<LinkKey>,
    iface_map: BTreeMap<(RouterId, u32), LinkKey>,
    caps: BTreeMap<(RouterId, RouterId), f64>,
    book: BTreeMap<FlowId, FlowInfo>,
    installed: BTreeMap<Prefix, Vec<Lie>>,
    alloc: LieAllocator,
    watch: Option<ControllerHandle>,
    /// Most recent alarm edge seen this run, rendered for the audit
    /// log (cross-reference into the `alarm.*` trace series).
    last_alarm: Option<String>,
    /// Observable counters.
    pub stats: ControllerStats,
}

/// Decision context threaded into reconcile/retract so every audited
/// injection/retraction carries its trigger provenance.
struct AuditCtx {
    trigger: String,
    candidates: usize,
    predicted_max_util: f64,
    measured_max_util: f64,
}

impl FibbingController {
    /// Build a controller with the given configuration.
    pub fn new(cfg: ControllerConfig) -> FibbingController {
        let monitor = LoadMonitor::new(
            CounterWidth::C64,
            cfg.ewma_alpha,
            Threshold::new(cfg.util_hi, cfg.util_lo, cfg.hold),
        );
        FibbingController {
            cfg,
            monitor,
            iface_map: BTreeMap::new(),
            caps: BTreeMap::new(),
            book: BTreeMap::new(),
            installed: BTreeMap::new(),
            alloc: LieAllocator::new(),
            watch: None,
            last_alarm: None,
            stats: ControllerStats::default(),
        }
    }

    /// A shared handle that tracks the controller live: the snapshot
    /// behind it is refreshed after every evaluation, so harnesses can
    /// read stats and the installed-lie count mid-run and after the
    /// simulator has taken ownership of the app.
    pub fn watch(&mut self) -> ControllerHandle {
        let handle = self
            .watch
            .get_or_insert_with(|| Arc::new(Mutex::new(ControllerSnapshot::default())));
        Arc::clone(handle)
    }

    fn publish(&mut self, api: &mut SimContext<'_>) {
        if let Some(w) = &self.watch {
            *w.lock() = ControllerSnapshot {
                stats: self.stats,
                installed_lies: self.installed_count(),
            };
        }
        if self.cfg.trace_lies {
            api.record("ctrl.lies", self.installed_count() as f64);
        }
    }

    /// Lies currently installed for a prefix.
    pub fn installed_lies(&self, prefix: Prefix) -> &[Lie] {
        self.installed
            .get(&prefix)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of installed lies.
    pub fn installed_count(&self) -> usize {
        self.installed.values().map(|v| v.len()).sum()
    }

    fn demands_by_prefix(&self) -> BTreeMap<Prefix, Vec<(RouterId, f64)>> {
        let mut agg: BTreeMap<Prefix, BTreeMap<RouterId, f64>> = BTreeMap::new();
        for info in self.book.values() {
            let rate = info.cap.unwrap_or(self.cfg.default_flow_rate);
            *agg.entry(info.dst)
                .or_default()
                .entry(info.src)
                .or_insert(0.0) += rate;
        }
        agg.into_iter()
            .map(|(p, m)| (p, m.into_iter().collect()))
            .collect()
    }

    fn all_demands(&self) -> Vec<Demand> {
        self.demands_by_prefix()
            .into_iter()
            .flat_map(|(prefix, v)| {
                v.into_iter()
                    .map(move |(src, rate)| Demand { src, prefix, rate })
            })
            .collect()
    }

    fn poll_snmp(&mut self, api: &mut SimContext<'_>) {
        self.stats.snmp_sweeps += 1;
        let _span = fib_trace::span(fib_trace::Phase::CtrlPoll);
        let now = api.now();
        let routers: Vec<RouterId> = {
            let mut v: Vec<RouterId> = self.caps.keys().map(|(f, _)| *f).collect();
            v.sort();
            v.dedup();
            v
        };
        for r in routers {
            let column = api.snmp_walk(r, &oids::if_out_octets());
            for (oid, value) in column {
                let Some(&idx) = oid.0.last() else { continue };
                let Some(key) = self.iface_map.get(&(r, idx)).copied() else {
                    continue;
                };
                if let Value::Counter(c) = value {
                    // Besides feeding is_alarmed()/alarmed_keys(),
                    // every edge lands in the run's trace (the
                    // `alarm.<from>-<to>` series steps to the edge
                    // utilization on raise, back to 0 on clear) and is
                    // remembered for audit-log cross-referencing.
                    if let Some(ev) = self.monitor.on_sample(&key, now, c) {
                        let (verb, level) = match ev.edge {
                            Edge::Raised => ("raised", ev.utilization),
                            Edge::Cleared => ("cleared", 0.0),
                        };
                        api.record(&format!("alarm.{}-{}", key.from, key.to), level);
                        self.last_alarm = Some(format!(
                            "{}->{} {verb} @{:.3}",
                            key.from, key.to, ev.utilization
                        ));
                    }
                }
            }
        }
    }

    /// Signature used to reconcile planned lies with installed ones.
    fn sig(l: &Lie) -> (RouterId, RouterId, u32) {
        (l.attach, l.fw.router, l.cost_at_attach().0)
    }

    /// Emit one lie-lifecycle audit record (free when tracing is off;
    /// the formatting only happens with a sink installed).
    fn audit(api: &SimContext<'_>, action: AuditAction, prefix: Prefix, lie: &Lie, ctx: &AuditCtx) {
        if !fib_trace::enabled() {
            return;
        }
        fib_trace::audit(AuditRecord {
            sim_ns: api.now().0,
            action,
            prefix: prefix.to_string(),
            lie: lie.to_string(),
            trigger: ctx.trigger.clone(),
            candidates: ctx.candidates,
            predicted_max_util: ctx.predicted_max_util,
            measured_max_util: ctx.measured_max_util,
        });
    }

    fn reconcile(
        &mut self,
        api: &mut SimContext<'_>,
        prefix: Prefix,
        new_lies: Vec<Lie>,
        actx: &AuditCtx,
    ) {
        let old = self.installed.remove(&prefix).unwrap_or_default();
        let mut old_by_sig: BTreeMap<(RouterId, RouterId, u32), Vec<Lie>> = BTreeMap::new();
        for l in old {
            old_by_sig.entry(Self::sig(&l)).or_default().push(l);
        }
        let mut final_set: Vec<Lie> = Vec::new();
        let mut to_inject: Vec<Lie> = Vec::new();
        for l in new_lies {
            match old_by_sig.get_mut(&Self::sig(&l)).and_then(|v| v.pop()) {
                Some(kept) => final_set.push(kept), // already installed
                None => {
                    to_inject.push(l);
                    final_set.push(l);
                }
            }
        }
        // Whatever remains in old_by_sig is obsolete.
        for (_, leftovers) in old_by_sig {
            for l in leftovers {
                if api.retract_fake(self.cfg.speaker, l.fake_id).is_ok() {
                    self.stats.retractions += 1;
                    Self::audit(api, AuditAction::Retract, prefix, &l, actx);
                }
            }
        }
        for l in &to_inject {
            if api
                .inject_fake(
                    self.cfg.speaker,
                    l.fake_id,
                    l.attach,
                    l.attach_metric,
                    l.prefix,
                    l.prefix_metric,
                    l.fw,
                )
                .is_ok()
            {
                self.stats.injections += 1;
                Self::audit(api, AuditAction::Inject, prefix, l, actx);
            }
        }
        if !final_set.is_empty() {
            self.installed.insert(prefix, final_set);
        }
    }

    fn retract_all(&mut self, api: &mut SimContext<'_>, prefix: Prefix, actx: &AuditCtx) {
        if let Some(lies) = self.installed.remove(&prefix) {
            for l in lies {
                if api.retract_fake(self.cfg.speaker, l.fake_id).is_ok() {
                    self.stats.retractions += 1;
                    Self::audit(api, AuditAction::Retract, prefix, &l, actx);
                }
            }
        }
    }

    /// One evaluation pass, ending with a publish even when a
    /// transient makes the pass bail early — the watch snapshot and
    /// the `ctrl.lies` trace must not skip exactly the disrupted
    /// ticks a scenario wants to measure.
    fn evaluate(&mut self, api: &mut SimContext<'_>) {
        let _span = fib_trace::span(fib_trace::Phase::CtrlOptimize);
        self.evaluate_inner(api);
        self.publish(api);
    }

    fn evaluate_inner(&mut self, api: &mut SimContext<'_>) {
        self.stats.evaluations += 1;
        let Some(view) = api.topology_view(self.cfg.speaker) else {
            return;
        };
        let real = view.without_fakes();
        let demands = self.all_demands();
        let by_prefix = self.demands_by_prefix();

        // Predicted utilization on the *current* forwarding state (the
        // controller's LSDB already contains its own lies).
        let predicted = match spread(&view, &demands) {
            Ok(loads) => max_utilization(&loads, &self.caps),
            Err(_) => return, // transient (convergence in progress)
        };
        let measured = if self.cfg.use_snmp {
            self.monitor.max_utilization()
        } else {
            0.0
        };
        let alarmed = self.cfg.use_snmp && !self.monitor.alarmed_keys().is_empty();
        let congested = (self.cfg.predictive && predicted >= self.cfg.util_hi)
            || alarmed
            || measured >= self.cfg.util_hi;
        // Trigger provenance for the audit log: which condition made
        // this pass act, in precedence order. Only rendered when a
        // trace sink is installed.
        let trigger = if congested && fib_trace::enabled() {
            if self.cfg.predictive && predicted >= self.cfg.util_hi {
                format!("predicted {predicted:.3} >= hi {:.3}", self.cfg.util_hi)
            } else if alarmed {
                format!(
                    "alarm {}",
                    self.last_alarm.as_deref().unwrap_or("(edge before start)")
                )
            } else {
                format!("measured {measured:.3} >= hi {:.3}", self.cfg.util_hi)
            }
        } else {
            String::new()
        };

        let prefixes: Vec<Prefix> = {
            let mut v: Vec<Prefix> = by_prefix.keys().copied().collect();
            for p in self.installed.keys() {
                if !v.contains(p) {
                    v.push(*p);
                }
            }
            v.sort();
            v
        };

        // Natural (lie-free) utilization decides retraction. It does
        // not depend on the prefix under consideration, so compute it
        // once per pass, not once per prefix.
        let natural = match spread(&real, &demands) {
            Ok(loads) => Some(max_utilization(&loads, &self.caps)),
            Err(_) => None,
        };
        for prefix in prefixes {
            let dem = by_prefix.get(&prefix).cloned().unwrap_or_default();
            let Some(natural) = natural else { continue };
            if self.installed.contains_key(&prefix) && natural <= self.cfg.util_lo {
                let actx = AuditCtx {
                    trigger: if fib_trace::enabled() {
                        format!("natural {natural:.3} <= lo {:.3}", self.cfg.util_lo)
                    } else {
                        String::new()
                    },
                    candidates: 0,
                    predicted_max_util: natural,
                    measured_max_util: measured,
                };
                self.retract_all(api, prefix, &actx);
                continue;
            }
            if !congested || dem.is_empty() {
                continue;
            }
            self.stats.reactions += 1;
            let plan = match crate::optimizer::plan_paths(
                &real,
                prefix,
                &dem,
                &self.caps,
                self.cfg.target_util,
                self.cfg.slot_budget,
            ) {
                Ok(p) => p,
                Err(_) => {
                    self.stats.failures += 1;
                    continue;
                }
            };
            let aug = match augment(&real, &plan.dag, &mut self.alloc) {
                Ok(a) => a,
                Err(_) => {
                    self.stats.failures += 1;
                    continue;
                }
            };
            // The augmentation's full lie set is the candidate set the
            // reducer chooses from; the plan's own load map gives the
            // predicted post-action max-utilization.
            let candidates = aug.lies.len();
            let plan_predicted = max_utilization(&plan.loads, &self.caps);
            let lies = if self.cfg.reduce_lies {
                reduce(&real, &plan.dag, &aug.lies)
            } else {
                aug.lies
            };
            let actx = AuditCtx {
                trigger: trigger.clone(),
                candidates,
                predicted_max_util: plan_predicted,
                measured_max_util: measured,
            };
            self.reconcile(api, prefix, lies, &actx);
        }
    }

    /// Pick up scripted capacity changes on links learned at start.
    ///
    /// Capacity is provisioning data, not link-state, so the IGP never
    /// tells the controller about it; an operator would push the new
    /// value into the management plane. A changed capacity re-seeds
    /// that link's monitor entry (the rate estimator restarts from the
    /// next sample).
    fn refresh_capacities(&mut self, api: &mut SimContext<'_>) {
        for info in api.links() {
            let k = (info.key.from, info.key.to);
            if let Some(cap) = self.caps.get_mut(&k) {
                if *cap != info.capacity {
                    *cap = info.capacity;
                    self.monitor.add(info.key, info.capacity);
                }
            }
        }
    }
}

impl FibbingController {
    fn on_start(&mut self, api: &mut SimContext<'_>) {
        // Learn the provisioning: every data link's capacity and its
        // SNMP interface index. Management links (touching the
        // speaker) are excluded from optimization and monitoring.
        for info in api.links() {
            if info.key.from == self.cfg.speaker || info.key.to == self.cfg.speaker {
                continue;
            }
            self.caps
                .insert((info.key.from, info.key.to), info.capacity);
            self.monitor.add(info.key, info.capacity);
            if let Some(idx) = api.ifindex_for(info.key.from, info.key.to) {
                self.iface_map.insert((info.key.from, idx), info.key);
            }
        }
    }

    fn on_tick(&mut self, api: &mut SimContext<'_>) {
        self.refresh_capacities(api);
        if self.cfg.use_snmp {
            self.poll_snmp(api);
        }
        self.evaluate(api);
    }

    fn on_flow_started(&mut self, api: &mut SimContext<'_>, info: &FlowInfo) {
        self.book.insert(info.id, info.clone());
        if self.cfg.predictive {
            self.evaluate(api);
        }
    }

    fn on_flow_stopped(&mut self, api: &mut SimContext<'_>, info: &FlowInfo) {
        self.book.remove(&info.id);
        if self.cfg.predictive {
            self.evaluate(api);
        }
    }
}

impl EventHandler for FibbingController {
    fn name(&self) -> &str {
        "fibbing-controller"
    }

    fn tick_interval(&self) -> Option<Dur> {
        Some(self.cfg.poll_interval)
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: AppEvent<'_>) {
        match ev {
            AppEvent::Start => self.on_start(ctx),
            AppEvent::Tick => self.on_tick(ctx),
            AppEvent::FlowStarted(info) => self.on_flow_started(ctx, info),
            AppEvent::FlowStopped(info) => self.on_flow_stopped(ctx, info),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::time::Timestamp;
    use fib_igp::types::Metric;
    use fib_netsim::events::Event;
    use fib_netsim::flow::FlowSpec;
    use fib_netsim::link::LinkSpec;
    use fib_netsim::sim::{Sim, SimConfig};

    /// Schedule a flow start through the typed event path.
    fn sched_flow(sim: &mut Sim, at: Timestamp, spec: FlowSpec) -> fib_netsim::flow::FlowId {
        let id = sim.new_flow_id();
        sim.schedule(at, Event::FlowStart { id, spec });
        id
    }

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Triangle with a slow alternative: 1-2 (1), 2-3 (1), 1-3 (5).
    /// Prefix at r3; capacity 1 MB/s per link. Controller at r100 on
    /// r2.
    fn sim_with_controller(cfg: ControllerConfig) -> Sim {
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=3 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(1), r(3), Metric(5), 1e6));
        sim.announce_prefix(r(3), Prefix::net24(1));
        sim.add_controller_speaker(r(100), r(2));
        sim.add_app(Box::new(FibbingController::new(cfg)));
        sim
    }

    #[test]
    fn controller_reacts_to_predicted_congestion() {
        let cfg = ControllerConfig::new(r(100));
        let mut sim = sim_with_controller(cfg);
        // 12 video flows of 100 kB/s from r1: 1.2 MB/s > 1 MB/s link.
        for i in 0..12 {
            sched_flow(
                &mut sim,
                Timestamp::from_secs(10) + Dur::from_millis(i * 10),
                FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
            );
        }
        sim.start();
        sim.run_until(Timestamp::from_secs(30));
        // r1 must have gained an extra ECMP slot toward r3.
        let hops = sim.ctx().fib_nexthops(r(1), Prefix::net24(1));
        assert!(
            hops.len() >= 2,
            "expected extra ECMP slots at r1, got {hops:?}"
        );
        assert!(hops.iter().any(|h| h.router == r(3)));
        // No link should be overloaded any more.
        let l12 = sim.link_rate(r(1), r(2)).unwrap();
        let l13 = sim.link_rate(r(1), r(3)).unwrap();
        assert!(l12 <= 1e6 + 1.0 && l13 <= 1e6 + 1.0);
        assert!(
            (l12 + l13 - 1.2e6).abs() < 1.0,
            "all traffic must be delivered: {l12} + {l13}"
        );
    }

    #[test]
    fn controller_retracts_when_demand_subsides() {
        let cfg = ControllerConfig::new(r(100));
        let mut sim = sim_with_controller(cfg);
        let mut ids = Vec::new();
        for i in 0..12 {
            ids.push(sched_flow(
                &mut sim,
                Timestamp::from_secs(10) + Dur::from_millis(i * 10),
                FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
            ));
        }
        // Stop all flows at t=40.
        for id in &ids {
            sim.schedule(Timestamp::from_secs(40), Event::FlowStop { id: *id });
        }
        sim.start();
        sim.run_until(Timestamp::from_secs(35));
        assert!(
            sim.ctx().fib_nexthops(r(1), Prefix::net24(1)).len() >= 2,
            "lies installed during the crowd"
        );
        sim.run_until(Timestamp::from_secs(60));
        // After retraction, r1 falls back to the single natural hop.
        let hops = sim.ctx().fib_nexthops(r(1), Prefix::net24(1));
        assert_eq!(hops.len(), 1, "lies must be retracted, got {hops:?}");
        assert_eq!(hops[0].router, r(2));
    }

    #[test]
    fn watch_handle_tracks_reactions_and_lies() {
        let mut cfg = ControllerConfig::new(r(100));
        cfg.trace_lies = true;
        let mut ctl = FibbingController::new(cfg.clone());
        let watch = ctl.watch();
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=3 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(1), r(3), Metric(5), 1e6));
        sim.announce_prefix(r(3), Prefix::net24(1));
        sim.add_controller_speaker(r(100), r(2));
        sim.add_app(Box::new(ctl));
        for i in 0..12 {
            sched_flow(
                &mut sim,
                Timestamp::from_secs(10) + Dur::from_millis(i * 10),
                FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
            );
        }
        sim.start();
        sim.run_until(Timestamp::from_secs(9));
        assert_eq!(watch.lock().installed_lies, 0);
        sim.run_until(Timestamp::from_secs(30));
        let snap = *watch.lock();
        assert!(snap.installed_lies >= 1, "lies visible through the watch");
        assert!(snap.stats.injections >= 1);
        assert!(snap.stats.evaluations > 0);
        // The traced series steps from 0 to the installed count.
        let series = sim.recorder().series("ctrl.lies");
        assert!(!series.is_empty());
        assert_eq!(series.first().map(|(_, v)| *v), Some(0.0));
        assert!(series.iter().any(|(_, v)| *v >= 1.0));
    }

    #[test]
    fn capacity_degradation_is_noticed_on_refresh() {
        // One flow of 500 kB/s over a 1 MB/s shortest path: fine —
        // until the path's capacity is scripted down to 600 kB/s and
        // predicted utilization crosses the threshold.
        let cfg = ControllerConfig::new(r(100));
        let mut sim = sim_with_controller(cfg);
        for i in 0..5 {
            sched_flow(
                &mut sim,
                Timestamp::from_secs(10) + Dur::from_millis(i * 10),
                FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
            );
        }
        sim.schedule(
            Timestamp::from_secs(20),
            Event::LinkCapacity {
                a: r(1),
                b: r(2),
                capacity: 6e5,
            },
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(18));
        assert_eq!(
            sim.ctx().fib_nexthops(r(1), Prefix::net24(1)).len(),
            1,
            "0.5 utilization: no reaction before the degradation"
        );
        sim.run_until(Timestamp::from_secs(40));
        assert!(
            sim.ctx().fib_nexthops(r(1), Prefix::net24(1)).len() >= 2,
            "controller reacts to the degraded capacity"
        );
    }

    #[test]
    fn small_demand_triggers_no_reaction() {
        let cfg = ControllerConfig::new(r(100));
        let mut sim = sim_with_controller(cfg);
        sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(30));
        let hops = sim.ctx().fib_nexthops(r(1), Prefix::net24(1));
        assert_eq!(hops.len(), 1, "no lies expected, got {hops:?}");
    }

    #[test]
    fn snmp_only_controller_reacts_later_but_reacts() {
        let mut cfg = ControllerConfig::new(r(100));
        cfg.predictive = false; // only the SNMP path
        cfg.hold = Dur::from_secs(2);
        let mut sim = sim_with_controller(cfg);
        for i in 0..12 {
            sched_flow(
                &mut sim,
                Timestamp::from_secs(10) + Dur::from_millis(i * 10),
                FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
            );
        }
        sim.start();
        sim.run_until(Timestamp::from_secs(13));
        // Too early: counters haven't shown sustained overload yet.
        assert_eq!(sim.ctx().fib_nexthops(r(1), Prefix::net24(1)).len(), 1);
        sim.run_until(Timestamp::from_secs(40));
        assert!(
            sim.ctx().fib_nexthops(r(1), Prefix::net24(1)).len() >= 2,
            "SNMP path must eventually react"
        );
    }
}
