//! Property tests of the full planning pipeline on random topologies:
//! optimizer → augmentation → reduction → verification. These are the
//! invariants that make the controller trustworthy on *any* network,
//! not just the paper's.

use fib_core::prelude::*;
use fib_igp::builders::random_connected;
use fib_igp::loadmodel::{max_utilization, spread, Demand};
use fib_igp::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Per-directed-link capacities.
type Capacities = BTreeMap<(RouterId, RouterId), f64>;

/// Build a random connected scenario: topology, sink prefix, two
/// demand sources, uniform capacities.
fn scenario(seed: u64, n: u32) -> (Topology, Prefix, Vec<(RouterId, f64)>, Capacities) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut topo = random_connected(&mut rng, n, n / 2, 4);
    let routers: Vec<RouterId> = topo.routers().collect();
    let sink = routers[rng.gen_range(0..routers.len())];
    let prefix = Prefix::net24(1);
    topo.announce_prefix(sink, prefix, Metric::ZERO).unwrap();
    let mut demands = Vec::new();
    while demands.len() < 2 {
        let s = routers[rng.gen_range(0..routers.len())];
        if s != sink && !demands.iter().any(|(r, _)| *r == s) {
            demands.push((s, rng.gen_range(50.0..150.0)));
        }
    }
    let caps: BTreeMap<(RouterId, RouterId), f64> =
        topo.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
    (topo, prefix, demands, caps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer's plan, realized as lies, always (a) verifies
    /// (constrained fractions hold, unconstrained routers untouched,
    /// loop-free) and (b) carries every unit of demand.
    #[test]
    fn optimizer_plans_realize_and_verify(seed in 0u64..500, n in 6u32..14) {
        let (topo, prefix, demands, caps) = scenario(seed, n);
        // An intentionally tight budget forces the θ* fallback — the
        // interesting (multi-path, uneven) regime.
        let plan = match plan_paths(&topo, prefix, &demands, &caps, 0.05, 8) {
            Ok(p) => p,
            Err(_) => return Ok(()), // disconnected demand: nothing to check
        };
        prop_assert_eq!(plan.dag.find_internal_loop(), None);
        let mut alloc = LieAllocator::new();
        let aug = match augment(&topo, &plan.dag, &mut alloc) {
            Ok(a) => a,
            // Rare: override planning can hit the cost floor on
            // degenerate graphs; the controller treats this as "no
            // reaction", which is safe.
            Err(AugmentError::CostUnderflow(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("augment failed: {e}"))),
        };
        let lies = reduce(&topo, &plan.dag, &aug.lies);
        let augmented = apply_all(&topo, &lies);
        let report = check_preserving(&topo, &augmented, &aug.effective_dag);
        prop_assert!(report.ok(), "verification failed: {report}");

        // All demand is delivered (spreads without error, loads sum up).
        let dem: Vec<Demand> = demands
            .iter()
            .map(|(src, rate)| Demand { src: *src, prefix, rate: *rate })
            .collect();
        let loads = spread(&augmented, &dem).expect("routable after augmentation");
        let _ = max_utilization(&loads, &caps);
    }

    /// Reduction never breaks a plan and never grows it.
    #[test]
    fn reduction_is_sound_and_shrinking(seed in 0u64..500, n in 6u32..12) {
        let (topo, prefix, demands, caps) = scenario(seed, n);
        let plan = match plan_paths(&topo, prefix, &demands, &caps, 0.05, 8) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let mut alloc = LieAllocator::new();
        let aug = match augment(&topo, &plan.dag, &mut alloc) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        let reduced = reduce(&topo, &plan.dag, &aug.lies);
        prop_assert!(reduced.len() <= aug.lies.len());
        let augmented = apply_all(&topo, &reduced);
        let report = check_preserving(&topo, &augmented, &plan.dag);
        prop_assert!(report.ok(), "reduced plan broke: {report}");
    }

    /// Splitting plans always hit the requested weights exactly when
    /// realized as ECMP slots on a star (analytical check).
    #[test]
    fn split_plans_realize_exact_slot_fractions(
        raw in proptest::collection::vec(0.1f64..1.0, 2..4),
        budget in 4u32..16,
    ) {
        let sum: f64 = raw.iter().sum();
        let fractions: Vec<f64> = raw.iter().map(|v| v / sum).collect();
        if budget < fractions.len() as u32 {
            return Ok(());
        }
        let plan = plan_split(&fractions, budget).unwrap();
        let total: u32 = plan.weights.iter().sum();
        for (w, frac) in plan.weights.iter().zip(&fractions) {
            let realized = f64::from(*w) / f64::from(total);
            prop_assert!((realized - frac).abs() <= plan.max_error + 1e-12);
        }
    }
}
