//! The explorer's identity path must be invisible.
//!
//! Arming the kernel's tie-break hook with an empty plan (the
//! explorer's baseline run) must not perturb the simulation at all:
//! the pinned scenario artifacts — `summary_csv` and the full trace
//! CSV — must be byte-identical to a stock run without any hook. This
//! is the property that makes explorer baselines trustworthy: rank 0
//! IS the schedule every other artifact in the repo was pinned under.

use fib_adversary::prelude::*;
use fib_scenario::prelude::*;

fn artifacts(spec: &ScenarioSpec, armed: bool) -> (String, String) {
    let opts = RunOptions {
        horizon_secs: Some(25.0),
        ..RunOptions::default()
    };
    let mut run = build(spec, opts).unwrap();
    if armed {
        let log = new_log();
        run.sim
            .set_tie_break(Some(Box::new(PlanHook::new((0.0, 25.0), Vec::new(), log))));
    }
    let report = run.finish();
    (report.summary_csv(), report.trace_csv.clone())
}

#[test]
fn identity_explorer_run_is_byte_identical_to_stock() {
    for name in ["paper_demo", "link_failure_under_load"] {
        let spec = load_scenario(name).unwrap();
        let (stock_summary, stock_trace) = artifacts(&spec, false);
        let (armed_summary, armed_trace) = artifacts(&spec, true);
        assert_eq!(
            stock_summary, armed_summary,
            "{name}: identity hook must not change the summary"
        );
        assert_eq!(
            stock_trace, armed_trace,
            "{name}: identity hook must not change the trace"
        );
    }
}

#[test]
fn identity_plan_has_the_identity_fingerprint() {
    // A plan of explicit rank-0 entries and the empty plan record the
    // same canonicalized decisions, so they fingerprint identically.
    let spec = load_scenario("paper_demo").unwrap();
    let opts = RunOptions {
        horizon_secs: Some(20.0),
        check_loops: true,
        ..RunOptions::default()
    };
    let fp_of = |plan: Vec<u64>| {
        let log = new_log();
        let mut run = build(&spec, opts).unwrap();
        run.sim.set_tie_break(Some(Box::new(PlanHook::new(
            (14.0, 16.0),
            plan,
            log.clone(),
        ))));
        run.finish();
        let l = log.lock();
        fingerprint(&l)
    };
    assert_eq!(fp_of(Vec::new()), fp_of(vec![0, 0, 0]));
}
