//! [`TieBreak`] implementations driving explored orderings.
//!
//! Both hooks confine themselves to a `[lo, hi)` window of simulated
//! time: outside it they return the identity without recording a
//! decision, so the schedule away from the fault instant under attack
//! stays stock-FIFO and the explored state space stays tractable.
//! Every in-window decision is appended to a shared [`ScheduleLog`]
//! (the run's schedule trace, fingerprinted for distinctness
//! counting) and mirrored through [`fib_trace::order`] so an exported
//! trace audits exactly which batches were reordered.

use fib_igp::time::Timestamp;
use fib_sim_kernel::TieBreak;
use fib_trace::OrderRecord;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Shared, append-only log of the ordering decisions one run made.
pub type ScheduleLog = Arc<Mutex<Vec<OrderRecord>>>;

/// A fresh, empty schedule log.
pub fn new_log() -> ScheduleLog {
    Arc::new(Mutex::new(Vec::new()))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic FNV-1a fingerprint of a schedule trace. Two runs
/// that made the same ordering decisions at the same instants share a
/// fingerprint; the explorer counts *distinct* fingerprints.
pub fn fingerprint(log: &[OrderRecord]) -> u64 {
    let mut h = FNV_OFFSET;
    for r in log {
        for b in r.render().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= u64::from(b';');
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// `n!` with saturation (21! overflows u64; ranks the explorer uses
/// are far below the saturation point, so clamping is safe).
pub fn factorial(n: usize) -> u64 {
    (1..=n as u64).fold(1u64, u64::saturating_mul)
}

/// The `rank`-th permutation of `0..n` in lexicographic order
/// (Lehmer unranking). `rank` is taken modulo `n!`.
pub fn unrank(n: usize, rank: u64) -> Vec<u32> {
    let mut rank = rank % factorial(n).max(1);
    let mut items: Vec<u32> = (0..n as u32).collect();
    let mut out = Vec::with_capacity(n);
    while !items.is_empty() {
        let f = factorial(items.len() - 1).max(1);
        let d = ((rank / f) as usize).min(items.len() - 1);
        rank %= f;
        out.push(items.remove(d));
    }
    out
}

fn is_identity(perm: &[u32]) -> bool {
    perm.iter().enumerate().all(|(i, p)| *p == i as u32)
}

/// Convert window seconds to a [`Timestamp`].
fn ts(secs: f64) -> Timestamp {
    Timestamp((secs.max(0.0) * 1e9) as u64)
}

/// Record one decision into the log and the trace audit stream.
/// Identity decisions are canonicalized to an empty permutation so a
/// random walk that happens to draw the identity fingerprints the
/// same as a plan that never touched the batch.
fn record(log: &ScheduleLog, at: Timestamp, n: usize, perm: Vec<u32>) -> Vec<u32> {
    let perm = if is_identity(&perm) { Vec::new() } else { perm };
    let rec = OrderRecord {
        sim_ns: at.0,
        batch: n as u32,
        perm: perm.clone(),
    };
    fib_trace::order(rec.clone());
    log.lock().push(rec);
    perm
}

/// Replay a fixed permutation plan: the `k`-th in-window decision
/// applies the plan's `k`-th Lehmer rank (missing entries = identity).
/// The exhaustive explorer enumerates these plans in DFS order.
pub struct PlanHook {
    lo: Timestamp,
    hi: Timestamp,
    plan: Vec<u64>,
    next: usize,
    log: ScheduleLog,
}

impl PlanHook {
    /// A hook applying `plan` inside `window` (seconds), recording
    /// every in-window decision into `log`.
    pub fn new(window: (f64, f64), plan: Vec<u64>, log: ScheduleLog) -> PlanHook {
        PlanHook {
            lo: ts(window.0),
            hi: ts(window.1),
            plan,
            next: 0,
            log,
        }
    }
}

impl TieBreak<Timestamp> for PlanHook {
    fn permute(&mut self, at: Timestamp, n: usize, out: &mut Vec<u32>) {
        if at < self.lo || at >= self.hi {
            return;
        }
        let rank = self.plan.get(self.next).copied().unwrap_or(0);
        self.next += 1;
        let perm = if rank == 0 {
            Vec::new()
        } else {
            unrank(n, rank)
        };
        let perm = record(&self.log, at, n, perm);
        out.extend_from_slice(&perm);
    }
}

/// A seeded random walk: every in-window batch gets an independent
/// Fisher–Yates shuffle. Same seed, same walk — the explorer derives
/// one seed per walk index so walks are reproducible individually.
pub struct RandomHook {
    lo: Timestamp,
    hi: Timestamp,
    rng: StdRng,
    log: ScheduleLog,
}

impl RandomHook {
    /// A hook shuffling every batch inside `window` (seconds) from
    /// `seed`, recording decisions into `log`.
    pub fn new(window: (f64, f64), seed: u64, log: ScheduleLog) -> RandomHook {
        RandomHook {
            lo: ts(window.0),
            hi: ts(window.1),
            rng: StdRng::seed_from_u64(seed),
            log,
        }
    }
}

impl TieBreak<Timestamp> for RandomHook {
    fn permute(&mut self, at: Timestamp, n: usize, out: &mut Vec<u32>) {
        if at < self.lo || at >= self.hi {
            return;
        }
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut self.rng);
        let perm = record(&self.log, at, n, perm);
        out.extend_from_slice(&perm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrank_is_lexicographic_and_total() {
        assert_eq!(unrank(3, 0), vec![0, 1, 2]);
        assert_eq!(unrank(3, 1), vec![0, 2, 1]);
        assert_eq!(unrank(3, 2), vec![1, 0, 2]);
        assert_eq!(unrank(3, 5), vec![2, 1, 0]);
        // Rank wraps modulo n!.
        assert_eq!(unrank(3, 6), unrank(3, 0));
        // Every rank yields a valid permutation.
        for n in 1..6 {
            for rank in 0..factorial(n) {
                let mut p = unrank(n, rank);
                p.sort_unstable();
                assert_eq!(p, (0..n as u32).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn fingerprints_separate_schedules() {
        let a = vec![OrderRecord {
            sim_ns: 10,
            batch: 2,
            perm: vec![1, 0],
        }];
        let b = vec![OrderRecord {
            sim_ns: 10,
            batch: 2,
            perm: Vec::new(),
        }];
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn plan_hook_respects_window_and_plan() {
        let log = new_log();
        let mut hook = PlanHook::new((1.0, 2.0), vec![1], log.clone());
        let mut out = Vec::new();
        // Outside the window: identity, unrecorded.
        hook.permute(ts(0.5), 3, &mut out);
        assert!(out.is_empty() && log.lock().is_empty());
        // First in-window decision: rank 1 of S_3 = [0, 2, 1].
        hook.permute(ts(1.5), 3, &mut out);
        assert_eq!(out, vec![0, 2, 1]);
        // Plan exhausted: identity, still recorded.
        out.clear();
        hook.permute(ts(1.6), 2, &mut out);
        assert!(out.is_empty());
        let log = log.lock();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].render(), "t=1500000000 n=3 perm=0.2.1");
        assert_eq!(log[1].render(), "t=1600000000 n=2 perm=id");
    }

    #[test]
    fn random_hook_is_reproducible_per_seed() {
        let run = |seed: u64| {
            let log = new_log();
            let mut hook = RandomHook::new((0.0, 10.0), seed, log.clone());
            let mut out = Vec::new();
            for i in 0..20 {
                out.clear();
                hook.permute(ts(i as f64 * 0.1), 4, &mut out);
            }
            let l = log.lock();
            fingerprint(&l)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds, different walks");
    }
}
