//! The seeded scenario fuzzer: mutate, run, score, minimize, archive.
//!
//! Each iteration derives a mutation sequence from the seed, applies
//! it to the base scenario, runs the result (loop probe armed), and
//! scores the report against the unmutated baseline for three signal
//! classes:
//!
//! * `fwd-loop` — the loop probe fired where the baseline run was
//!   loop-free (fault scripts that micro-loop during reconvergence
//!   under the stock schedule don't count their loops as finds);
//! * `unroutable-spike` — blackout flow-seconds beyond the invariant
//!   bound (`factor × baseline + slack`);
//! * `qoe-cliff` — mean QoE fell more than the cliff threshold below
//!   the baseline (a mutation that *gradually* degrades QoE is
//!   uninteresting; a cliff hints at a routing or retraction race).
//!
//! A scoring find is [`minimize`]d by greedy mutation-reversal (each
//! probe is a full deterministic sim run) and can then be
//! [`archive_find`]-ed: serialized under `scenarios/found/` with
//! `pin_seed = true` and an `[expect]` stanza recording the bad
//! behaviour, so `scenario_suite --suite found` fails loudly the day
//! a code change makes the find unreproducible — or the day the bug
//! it witnesses comes back, depending on which side of the bound the
//! stanza pins.

use crate::invariants::{Baseline, InvariantConfig};
use crate::minimize::minimize;
use crate::mutate::{apply_all, gen_mutations, Mutation};
use fib_scenario::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// Fuzzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed: derives every iteration's mutation draw.
    pub seed: u64,
    /// Mutated scenarios to try.
    pub iters: usize,
    /// Mutations composed per iteration.
    pub max_mutations: usize,
    /// QoE drop (mean score, 0..1 scale) that counts as a cliff.
    pub qoe_cliff: f64,
    /// Horizon override (seconds) for faster campaigns.
    pub horizon_secs: Option<f64>,
    /// Bounds for the unroutable-spike signal.
    pub invariants: InvariantConfig,
    /// Minimize finds (every probe is one more sim run).
    pub minimize: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xFACE,
            iters: 32,
            max_mutations: 4,
            qoe_cliff: 0.3,
            horizon_secs: None,
            invariants: InvariantConfig::default(),
            minimize: true,
        }
    }
}

/// A scoring mutated scenario, minimized if the campaign asked for it.
#[derive(Debug, Clone)]
pub struct Find {
    /// Iteration that produced it.
    pub iter: usize,
    /// Signal class: `fwd-loop`, `unroutable-spike`, or `qoe-cliff`.
    pub signal: String,
    /// The (minimized) mutation sequence from the base spec.
    pub mutations: Vec<Mutation>,
    /// The mutated spec the signal reproduces on.
    pub spec: ScenarioSpec,
    /// Mean QoE score of the find's run.
    pub mean_qoe: f64,
    /// Unroutable flow-seconds of the find's run.
    pub unroutable_flow_secs: f64,
    /// Settle points with a forwarding loop in the find's run.
    pub fwd_loop_settles: u64,
    /// Lies still installed at the find's horizon.
    pub final_lies: u64,
}

/// What a fuzzing campaign produced.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Base scenario fuzzed.
    pub scenario: String,
    /// Master seed of the campaign.
    pub seed: u64,
    /// Iterations executed.
    pub iters: usize,
    /// Total sim runs (baseline + iterations + minimization probes).
    pub runs: usize,
    /// The finds, in iteration order.
    pub finds: Vec<Find>,
    /// Baseline mean QoE the cliff signal compared against.
    pub baseline_qoe: f64,
    /// Baseline for the unroutable-spike signal.
    pub baseline: Baseline,
}

fn run_once(spec: &ScenarioSpec, horizon: Option<f64>) -> Result<ScenarioReport, SpecError> {
    run(
        spec,
        RunOptions {
            horizon_secs: horizon,
            check_loops: true,
            ..RunOptions::default()
        },
    )
}

/// Which signal (if any) `report` raises against the baseline.
fn signal_of(
    report: &ScenarioReport,
    baseline: &Baseline,
    baseline_qoe: f64,
    cfg: &FuzzConfig,
) -> Option<&'static str> {
    if baseline.fwd_loop_settles == 0 && report.fwd_loop_settles > 0 {
        return Some("fwd-loop");
    }
    let bound = cfg.invariants.unroutable_factor * baseline.unroutable_flow_secs
        + cfg.invariants.unroutable_slack_secs;
    if report.unroutable_flow_secs > bound {
        return Some("unroutable-spike");
    }
    if report.qoe.sessions > 0 && baseline_qoe - report.qoe.mean_score > cfg.qoe_cliff {
        return Some("qoe-cliff");
    }
    None
}

/// Fuzz `base` per `cfg`. Deterministic: the same base spec and
/// config reproduce the same finds (and the same minimizations).
pub fn fuzz(base: &ScenarioSpec, cfg: &FuzzConfig) -> Result<FuzzOutcome, SpecError> {
    let base_report = run_once(base, cfg.horizon_secs)?;
    let baseline = Baseline::from_report(&base_report);
    let baseline_qoe = base_report.qoe.mean_score;
    let mut runs = 1usize;
    let mut finds = Vec::new();

    for iter in 0..cfg.iters {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (iter as u64).wrapping_mul(0x9E37_79B9));
        let mutations = gen_mutations(base, &mut rng, cfg.max_mutations);
        let mutated = apply_all(base, &mutations);
        let Ok(report) = run_once(&mutated, cfg.horizon_secs) else {
            // A mutation produced an unrunnable spec (e.g. a retarget
            // raced a structural edit); skip, the draw was still spent.
            continue;
        };
        runs += 1;
        let Some(signal) = signal_of(&report, &baseline, baseline_qoe, cfg) else {
            continue;
        };

        let (mutations, report) = if cfg.minimize {
            let mut probes = 0usize;
            let minimal = minimize(base, &mutations, |candidate| {
                probes += 1;
                match run_once(candidate, cfg.horizon_secs) {
                    Ok(r) => signal_of(&r, &baseline, baseline_qoe, cfg) == Some(signal),
                    Err(_) => false,
                }
            });
            runs += probes;
            let minimal_spec = apply_all(base, &minimal);
            let report = run_once(&minimal_spec, cfg.horizon_secs)?;
            runs += 1;
            (minimal, report)
        } else {
            (mutations, report)
        };

        finds.push(Find {
            iter,
            signal: signal.to_string(),
            mutations: mutations.clone(),
            spec: apply_all(base, &mutations),
            mean_qoe: report.qoe.mean_score,
            unroutable_flow_secs: report.unroutable_flow_secs,
            fwd_loop_settles: report.fwd_loop_settles,
            final_lies: report.final_lies,
        });
    }

    Ok(FuzzOutcome {
        scenario: base.name.clone(),
        seed: cfg.seed,
        iters: cfg.iters,
        runs,
        finds,
        baseline_qoe,
        baseline,
    })
}

/// Derive the `[expect]` stanza pinning a find's bad behaviour, with
/// margins wide enough to survive benign jitter from unrelated
/// changes but tight enough to notice the signal vanishing.
fn expect_for(find: &Find) -> ExpectSpec {
    let mut x = ExpectSpec::default();
    match find.signal.as_str() {
        "fwd-loop" => {
            x.min_fwd_loops = Some(1);
        }
        "unroutable-spike" => {
            x.min_unroutable_flow_secs = Some(find.unroutable_flow_secs * 0.5);
        }
        _ => {
            // qoe-cliff: the find's mean QoE plus margin stays below
            // where the baseline was.
            x.max_mean_qoe = Some(find.mean_qoe + 0.1);
        }
    }
    x
}

/// Archive `find` as a replayable regression scenario under `dir`
/// (normally `scenarios/found/`): `pin_seed = true`, a provenance
/// description, and an `[expect]` stanza the suite runner enforces.
/// Returns the path written. The file name is the scenario name, so
/// `scenario_suite --suite found` picks it up by construction.
pub fn archive_find(find: &Find, base_name: &str, dir: &Path) -> std::io::Result<PathBuf> {
    let mut spec = find.spec.clone();
    spec.name = format!(
        "{base_name}_f{:03}_{}",
        find.iter,
        find.signal.replace('-', "_")
    );
    spec.pin_seed = true;
    spec.description = format!(
        "fuzzer find ({}): {} mutation(s) on `{}`; archived by fib-adversary",
        find.signal,
        find.mutations.len(),
        base_name
    );
    spec.expect = Some(expect_for(find));
    let path = dir.join(format!("{}.toml", spec.name));
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, spec.to_toml_string())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately fragile base: a line topology (every link a
    /// bridge) near capacity, so mutations readily open blackouts
    /// and QoE cliffs.
    fn spec() -> ScenarioSpec {
        ScenarioSpec::from_toml_str(
            r#"
name = "fuzz_tiny"
horizon_secs = 20.0
seed = 5
capacity = 1e6

[topology]
kind = "line"
n = 4

[[workload]]
kind = "constant"
at = 2.0
src = 1
n = 6
rate = 1.5e5
video_secs = 60.0

[[event]]
at = 8.0
action = "fail_link"
a = 2
b = 3

[[event]]
at = 9.0
action = "restore_link"
a = 2
b = 3
"#,
        )
        .unwrap()
    }

    fn cfg() -> FuzzConfig {
        FuzzConfig {
            seed: 77,
            iters: 10,
            max_mutations: 3,
            qoe_cliff: 0.2,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic_and_scores_finds() {
        let a = fuzz(&spec(), &cfg()).unwrap();
        let b = fuzz(&spec(), &cfg()).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.finds.len(), b.finds.len());
        for (x, y) in a.finds.iter().zip(&b.finds) {
            assert_eq!(x.signal, y.signal);
            assert_eq!(x.mutations, y.mutations);
            assert_eq!(x.spec, y.spec);
        }
        assert!(
            !a.finds.is_empty(),
            "a near-capacity line under link faults must yield finds"
        );
        // Minimized finds still reproduce their signal and are minimal
        // by construction (minimize() re-checks every single-drop).
        for f in &a.finds {
            assert!(!f.mutations.is_empty());
        }
    }

    #[test]
    fn archived_finds_replay_with_their_expectations() {
        let out = fuzz(&spec(), &cfg()).unwrap();
        let find = &out.finds[0];
        let dir = std::env::temp_dir().join("fib_adversary_fuzz_test");
        let path = archive_find(find, "fuzz_tiny", &dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = ScenarioSpec::from_toml_str(&text).unwrap();
        assert!(spec.pin_seed, "archived finds pin their seed");
        let expect = spec.expect.clone().expect("archived finds carry [expect]");
        assert!(!expect.is_empty());
        // Replaying the archived file (as the suite runner would)
        // satisfies its own expectation stanza.
        let report = run(&spec, RunOptions::default()).unwrap();
        let violations = expect.check(&report);
        assert!(
            violations.is_empty(),
            "archived expectation must hold on replay: {violations:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
