//! Mutation operators over [`ScenarioSpec`]s.
//!
//! Each [`Mutation`] is a small, named, *reversible-by-omission* edit:
//! the fuzzer composes a handful per iteration, and the minimizer
//! shrinks a find by dropping mutations one at a time and re-checking.
//! Operators keep the spec well-formed — times are clamped into
//! `[0, horizon]`, crowd sizes stay ≥ 1, link retargets only choose
//! endpoints that exist in the seeded topology — and [`apply`] always
//! finishes with a stable re-sort of the event script by time, which
//! is exactly the normalization the TOML parser performs, so every
//! mutated spec round-trips byte-stably through emit → parse.

use fib_igp::types::RouterId;
use fib_scenario::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// One spec edit. `idx` fields index into the spec's event or
/// workload lists *at application time*; out-of-range indices are
/// no-ops so a mutation sequence stays applicable while the minimizer
/// drops earlier entries.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Shift event `idx` by `delta_secs` (clamped to `[0, horizon]`).
    ShiftEvent {
        /// Event index.
        idx: usize,
        /// Signed shift in seconds.
        delta_secs: f64,
    },
    /// Clone event `idx` and schedule the copy at `at_secs`.
    DuplicateEvent {
        /// Event index to clone.
        idx: usize,
        /// Time of the duplicate (clamped to `[0, horizon]`).
        at_secs: f64,
    },
    /// Swap the times of events `i` and `j` (reorders the script).
    SwapEventTimes {
        /// First event index.
        i: usize,
        /// Second event index.
        j: usize,
    },
    /// Scale workload `idx`'s crowd size by `factor` (min 1 session;
    /// only `constant`/`poisson` workloads carry a crowd).
    ScaleCrowd {
        /// Workload index.
        idx: usize,
        /// Multiplier on `n`.
        factor: f64,
    },
    /// Scale the uniform link capacity by `factor`.
    ScaleCapacity {
        /// Multiplier on `capacity`.
        factor: f64,
    },
    /// Point link-fault event `idx` at the link `a`-`b` instead —
    /// the generator aims these at topology bridges, where a failure
    /// actually partitions traffic.
    RetargetLink {
        /// Event index (must be `fail_link`/`restore_link`/`set_capacity`).
        idx: usize,
        /// New endpoint.
        a: u32,
        /// New endpoint.
        b: u32,
    },
}

fn clamp_at(at: f64, horizon: f64) -> f64 {
    at.clamp(0.0, horizon)
}

/// Apply one mutation, returning the edited spec. The event script is
/// stably re-sorted by time afterwards (mirroring the parser), so the
/// result round-trips through `emit`/`parse` unchanged.
pub fn apply(spec: &ScenarioSpec, m: &Mutation) -> ScenarioSpec {
    let mut s = spec.clone();
    match m {
        Mutation::ShiftEvent { idx, delta_secs } => {
            if let Some(e) = s.events.get_mut(*idx) {
                e.at = clamp_at(e.at + delta_secs, s.horizon_secs);
            }
        }
        Mutation::DuplicateEvent { idx, at_secs } => {
            if let Some(e) = s.events.get(*idx) {
                let mut dup = e.clone();
                dup.at = clamp_at(*at_secs, s.horizon_secs);
                s.events.push(dup);
            }
        }
        Mutation::SwapEventTimes { i, j } => {
            if *i < s.events.len() && *j < s.events.len() && i != j {
                let ti = s.events[*i].at;
                s.events[*i].at = s.events[*j].at;
                s.events[*j].at = ti;
            }
        }
        Mutation::ScaleCrowd { idx, factor } => {
            if let Some(w) = s.workloads.get_mut(*idx) {
                match w {
                    WorkloadSpec::Constant { n, .. } | WorkloadSpec::Poisson { n, .. } => {
                        *n = ((f64::from(*n) * factor).round() as u32).max(1);
                    }
                    WorkloadSpec::Paper { .. } | WorkloadSpec::Diurnal { .. } => {}
                }
            }
        }
        Mutation::ScaleCapacity { factor } => {
            s.capacity *= factor;
        }
        Mutation::RetargetLink { idx, a, b } => {
            if let Some(e) = s.events.get_mut(*idx) {
                match &mut e.kind {
                    EventKind::FailLink { a: ea, b: eb }
                    | EventKind::RestoreLink { a: ea, b: eb }
                    | EventKind::SetCapacity { a: ea, b: eb, .. } => {
                        *ea = *a;
                        *eb = *b;
                    }
                    _ => {}
                }
            }
        }
    }
    // The parser stably sorts the script by time; match it so the
    // mutated spec equals its own emit→parse round-trip.
    s.events.sort_by(|x, y| x.at.total_cmp(&y.at));
    s
}

/// Apply a mutation sequence left to right.
pub fn apply_all(spec: &ScenarioSpec, ms: &[Mutation]) -> ScenarioSpec {
    ms.iter().fold(spec.clone(), |s, m| apply(&s, m))
}

/// The bridge links of the spec's seeded topology (undirected, as
/// sorted `(a, b)` pairs): removing any of these disconnects real
/// routers, so they are where link faults bite hardest. Computed by
/// one DFS low-link pass over the same graph `build` would construct.
pub fn bridges(spec: &ScenarioSpec) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let topo = build_topology(&spec.topology, &mut rng);

    // Dense-index the routers; collect the undirected adjacency.
    let routers: Vec<RouterId> = topo.routers().collect();
    let index: BTreeMap<RouterId, usize> =
        routers.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); routers.len()];
    for (i, r) in routers.iter().enumerate() {
        for l in topo.links(*r) {
            if let Some(&j) = index.get(&l.to) {
                adj[i].push(j);
            }
        }
    }

    // Iterative Tarjan bridge-finding (lowpoint DFS). The explicit
    // stack carries (node, parent, next-neighbor cursor); an edge
    // (u, v) is a bridge when low[v] > disc[u]. Parallel edges don't
    // occur (the builder adds each symmetric link once per direction).
    let n = routers.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut time = 0usize;
    let mut out = Vec::new();
    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
        disc[start] = time;
        low[start] = time;
        time += 1;
        while let Some(&mut (u, parent, ref mut cursor)) = stack.last_mut() {
            if *cursor < adj[u].len() {
                let v = adj[u][*cursor];
                *cursor += 1;
                if disc[v] == usize::MAX {
                    disc[v] = time;
                    low[v] = time;
                    time += 1;
                    stack.push((v, u, 0));
                } else if v != parent {
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        let (a, b) = (routers[p].0, routers[u].0);
                        out.push((a.min(b), a.max(b)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Draw `k` random mutations for `spec` from `rng`. Link retargets
/// prefer bridges when the topology has any; every operator's
/// parameters stay within the spec's own ranges.
pub fn gen_mutations(spec: &ScenarioSpec, rng: &mut StdRng, k: usize) -> Vec<Mutation> {
    let bridges = bridges(spec);
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        let has_events = !spec.events.is_empty();
        let has_workloads = !spec.workloads.is_empty();
        let m = loop {
            match rng.gen_range(0..6u32) {
                0 if has_events => {
                    break Mutation::ShiftEvent {
                        idx: rng.gen_range(0..spec.events.len()),
                        delta_secs: rng.gen_range(-5.0..5.0),
                    }
                }
                1 if has_events => {
                    break Mutation::DuplicateEvent {
                        idx: rng.gen_range(0..spec.events.len()),
                        at_secs: rng.gen_range(0.0..spec.horizon_secs),
                    }
                }
                2 if spec.events.len() >= 2 => {
                    break Mutation::SwapEventTimes {
                        i: rng.gen_range(0..spec.events.len()),
                        j: rng.gen_range(0..spec.events.len()),
                    }
                }
                3 if has_workloads => {
                    break Mutation::ScaleCrowd {
                        idx: rng.gen_range(0..spec.workloads.len()),
                        factor: rng.gen_range(0.5..4.0),
                    }
                }
                4 => {
                    break Mutation::ScaleCapacity {
                        factor: rng.gen_range(0.25..1.5),
                    }
                }
                5 if has_events && !bridges.is_empty() => {
                    let (a, b) = bridges[rng.gen_range(0..bridges.len())];
                    break Mutation::RetargetLink {
                        idx: rng.gen_range(0..spec.events.len()),
                        a,
                        b,
                    };
                }
                _ => {} // infeasible for this spec; redraw
            }
        };
        out.push(m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::from_toml_str(
            r#"
name = "mutate_base"
horizon_secs = 30.0
seed = 11
capacity = 2e6

[topology]
kind = "line"
n = 5

[controller]
attach = 3
default_flow_rate = 100000.0

[[workload]]
kind = "constant"
at = 2.0
src = 1
n = 8
rate = 1e5
video_secs = 60.0

[[workload]]
kind = "poisson"
start = 4.0
mean_gap_secs = 0.5
n = 6
src = 2
rate = 1e5
video_secs = 30.0

[[event]]
at = 10.0
action = "fail_link"
a = 2
b = 3

[[event]]
at = 20.0
action = "restore_link"
a = 2
b = 3
"#,
        )
        .unwrap()
    }

    fn roundtrip(s: &ScenarioSpec) -> ScenarioSpec {
        ScenarioSpec::from_toml_str(&s.to_toml_string()).unwrap()
    }

    #[test]
    fn every_operator_round_trips_through_the_parser() {
        let base = spec();
        let ops = vec![
            Mutation::ShiftEvent {
                idx: 0,
                delta_secs: 3.25,
            },
            Mutation::ShiftEvent {
                idx: 1,
                delta_secs: -40.0, // clamps to 0 and reorders
            },
            Mutation::DuplicateEvent {
                idx: 0,
                at_secs: 25.5,
            },
            Mutation::SwapEventTimes { i: 0, j: 1 },
            Mutation::ScaleCrowd {
                idx: 0,
                factor: 2.5,
            },
            Mutation::ScaleCrowd {
                idx: 1,
                factor: 0.01, // floors at n = 1
            },
            Mutation::ScaleCapacity { factor: 0.5 },
            Mutation::RetargetLink { idx: 1, a: 4, b: 5 },
        ];
        for m in &ops {
            let mutated = apply(&base, m);
            assert_eq!(
                roundtrip(&mutated),
                mutated,
                "operator {m:?} must round-trip through emit→parse"
            );
        }
        // And composed sequences round-trip too.
        let mutated = apply_all(&base, &ops);
        assert_eq!(roundtrip(&mutated), mutated);
    }

    #[test]
    fn operators_respect_spec_bounds() {
        let base = spec();
        let s = apply(
            &base,
            &Mutation::ShiftEvent {
                idx: 0,
                delta_secs: 1e9,
            },
        );
        assert!(s.events.iter().all(|e| e.at <= base.horizon_secs));
        let s = apply(
            &base,
            &Mutation::ScaleCrowd {
                idx: 1,
                factor: 0.0,
            },
        );
        let WorkloadSpec::Poisson { n, .. } = s.workloads[1] else {
            panic!("workload kind changed");
        };
        assert_eq!(n, 1, "crowd floors at one session");
        // Out-of-range indices are no-ops.
        assert_eq!(
            apply(
                &base,
                &Mutation::ShiftEvent {
                    idx: 99,
                    delta_secs: 1.0
                }
            ),
            base
        );
    }

    #[test]
    fn line_topology_is_all_bridges() {
        let b = bridges(&spec());
        assert_eq!(b, vec![(1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn generator_is_deterministic_and_in_range() {
        let base = spec();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = gen_mutations(&base, &mut r1, 12);
        let b = gen_mutations(&base, &mut r2, 12);
        assert_eq!(a, b, "same seed, same mutations");
        // Applying any generated sequence keeps the spec parseable.
        let mutated = apply_all(&base, &a);
        assert_eq!(roundtrip(&mutated), mutated);
    }
}
