//! The schedule explorer: enumerate same-timestamp interleavings.
//!
//! ## Exploration model
//!
//! A *decision point* is a batch of ≥ 2 events sharing one timestamp
//! inside the configured window; the kernel's [`TieBreak`] hook lets
//! us serve the batch in any order. A *plan* is a vector of Lehmer
//! ranks, one per decision point in encounter order; the empty plan
//! is the stock-FIFO identity schedule. Plans are enumerated DFS,
//! canonically (every enqueued plan ends in a nonzero rank, so no
//! schedule is run twice): running a plan of length `k` reveals the
//! batch sizes of every later decision *under that prefix*, which is
//! exactly what's needed to expand its children — decision `k+j`'s
//! batch size under `plan ++ zeros` equals what the parent run
//! observed, because the schedules coincide up to that point.
//!
//! After the bounded exhaustive phase, seeded random walks
//! ([`RandomHook`]) sample the deeper space: walk `w` shuffles every
//! in-window batch from seed `seed ⊕ w·φ64`, so each walk is
//! individually replayable.
//!
//! Every run is checked against the [`crate::invariants`]; every
//! schedule trace is fingerprinted, and the sorted set of distinct
//! fingerprints is folded into a digest CI byte-compares across
//! double runs.
//!
//! [`TieBreak`]: fib_sim_kernel::TieBreak

use crate::hook::{factorial, fingerprint, new_log, PlanHook, RandomHook};
use crate::invariants::{check, Baseline, InvariantConfig};
use fib_igp::time::Timestamp;
use fib_scenario::prelude::*;
use fib_sim_kernel::TieBreak;
use fib_trace::OrderRecord;
use std::collections::BTreeSet;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Explorer configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Simulated-time window `[lo, hi)` (seconds) inside which ties
    /// are permuted; pick it around the fault instant under attack.
    pub window: (f64, f64),
    /// Decision points the exhaustive phase may branch over.
    pub max_depth: usize,
    /// Permutations considered per decision point (caps `n!`).
    pub perm_cap: u64,
    /// Run budget for the exhaustive phase (identity run included).
    pub max_runs: usize,
    /// Seeded random walks after the exhaustive phase.
    pub walks: usize,
    /// Base seed for the walk RNGs.
    pub seed: u64,
    /// Horizon override (seconds) — shrink it to the window plus
    /// settle margin to afford more runs.
    pub horizon_secs: Option<f64>,
    /// Safety-invariant bounds.
    pub invariants: InvariantConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            window: (14.0, 16.0),
            max_depth: 4,
            perm_cap: 6,
            max_runs: 96,
            walks: 64,
            seed: 0xF1B,
            horizon_secs: None,
            invariants: InvariantConfig::default(),
        }
    }
}

/// What one exploration produced.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Scenario explored.
    pub scenario: String,
    /// Seed the scenario ran with.
    pub scenario_seed: u64,
    /// The permutation window (seconds).
    pub window: (f64, f64),
    /// Total runs (identity + exhaustive + walks).
    pub runs: usize,
    /// Runs in the exhaustive phase (identity included).
    pub exhaustive_runs: usize,
    /// Random-walk runs.
    pub walk_runs: usize,
    /// Distinct schedule fingerprints observed.
    pub distinct: usize,
    /// Most in-window decision points any single run saw.
    pub max_decisions: usize,
    /// Largest same-timestamp batch any in-window decision had.
    pub max_batch: usize,
    /// Invariant violations, one string each (empty = all safe).
    pub violations: Vec<String>,
    /// FNV fold of the sorted distinct fingerprints (deterministic;
    /// CI byte-compares it across double runs).
    pub digest: u64,
    /// The identity run's baseline the relative invariants used.
    pub baseline: Baseline,
}

/// One run of `spec` with `hook` armed; returns the report, the
/// schedule trace, and rendered loop cycles (if any).
fn run_with_hook(
    spec: &ScenarioSpec,
    opts: RunOptions,
    hook: Box<dyn TieBreak<Timestamp>>,
    log: &crate::hook::ScheduleLog,
) -> Result<(ScenarioReport, Vec<OrderRecord>, Vec<String>), SpecError> {
    let mut run = build(spec, opts)?;
    run.sim.set_tie_break(Some(hook));
    let horizon = run.horizon_secs();
    run.run_until_secs(horizon);
    let cycles: Vec<String> = run
        .sim
        .loop_violations()
        .iter()
        .map(|v| {
            let path: Vec<String> = v.cycle.iter().map(|r| r.0.to_string()).collect();
            format!(
                "t={:.3}s prefix={:?} cycle={}",
                v.at.as_secs_f64(),
                v.prefix,
                path.join("->")
            )
        })
        .collect();
    let report = run.finish();
    let trace = log.lock().clone();
    Ok((report, trace, cycles))
}

fn plan_label(plan: &[u64]) -> String {
    let ranks: Vec<String> = plan.iter().map(|r| r.to_string()).collect();
    format!("plan=[{}]", ranks.join(","))
}

/// Push the canonical children of `plan` (run with trace `trace`):
/// every extension by zeros followed by one nonzero rank, bounded by
/// depth and the per-decision permutation cap.
fn expand(stack: &mut Vec<Vec<u64>>, plan: &[u64], trace: &[OrderRecord], cfg: &ExploreConfig) {
    let upto = cfg.max_depth.min(trace.len());
    for (k, rec) in trace.iter().enumerate().take(upto).skip(plan.len()) {
        let n = rec.batch as usize;
        let total = factorial(n).min(cfg.perm_cap);
        // Reverse so DFS visits low ranks first.
        for rank in (1..total).rev() {
            let mut child = plan.to_vec();
            child.resize(k, 0);
            child.push(rank);
            stack.push(child);
        }
    }
}

/// Explore `spec`'s same-timestamp interleavings per `cfg`.
pub fn explore(spec: &ScenarioSpec, cfg: &ExploreConfig) -> Result<ExploreOutcome, SpecError> {
    let opts = RunOptions {
        horizon_secs: cfg.horizon_secs,
        check_loops: true,
        ..RunOptions::default()
    };

    // Identity run: the baseline every relative invariant compares to.
    let log = new_log();
    let (base_report, base_trace, _base_cycles) = run_with_hook(
        spec,
        opts,
        Box::new(PlanHook::new(cfg.window, Vec::new(), log.clone())),
        &log,
    )?;
    // All three invariants are relative to this baseline: an identity
    // run that micro-loops during reconvergence legitimizes loops for
    // the whole exploration (the outcome's baseline records it).
    let baseline = Baseline::from_report(&base_report);
    let mut violations = Vec::new();
    let mut distinct: BTreeSet<u64> = BTreeSet::new();
    distinct.insert(fingerprint(&base_trace));
    let mut max_decisions = base_trace.len();
    let mut max_batch = base_trace
        .iter()
        .map(|r| r.batch as usize)
        .max()
        .unwrap_or(0);
    let mut exhaustive_runs = 1usize;

    // Bounded-exhaustive DFS over canonical plans.
    let mut stack: Vec<Vec<u64>> = Vec::new();
    expand(&mut stack, &[], &base_trace, cfg);
    while let Some(plan) = stack.pop() {
        if exhaustive_runs >= cfg.max_runs {
            break;
        }
        let log = new_log();
        let (report, trace, cycles) = run_with_hook(
            spec,
            opts,
            Box::new(PlanHook::new(cfg.window, plan.clone(), log.clone())),
            &log,
        )?;
        exhaustive_runs += 1;
        distinct.insert(fingerprint(&trace));
        max_decisions = max_decisions.max(trace.len());
        max_batch = max_batch.max(trace.iter().map(|r| r.batch as usize).max().unwrap_or(0));
        violations.extend(check(
            &plan_label(&plan),
            &report,
            &cycles,
            &baseline,
            &cfg.invariants,
        ));
        expand(&mut stack, &plan, &trace, cfg);
    }

    // Seeded random walks into the deeper space.
    let mut walk_runs = 0usize;
    for w in 0..cfg.walks {
        let walk_seed = cfg.seed ^ (w as u64).wrapping_mul(GOLDEN);
        let log = new_log();
        let (report, trace, cycles) = run_with_hook(
            spec,
            opts,
            Box::new(RandomHook::new(cfg.window, walk_seed, log.clone())),
            &log,
        )?;
        walk_runs += 1;
        distinct.insert(fingerprint(&trace));
        max_decisions = max_decisions.max(trace.len());
        max_batch = max_batch.max(trace.iter().map(|r| r.batch as usize).max().unwrap_or(0));
        violations.extend(check(
            &format!("walk={w}"),
            &report,
            &cycles,
            &baseline,
            &cfg.invariants,
        ));
    }

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for fp in &distinct {
        digest ^= *fp;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }

    Ok(ExploreOutcome {
        scenario: spec.name.clone(),
        scenario_seed: base_report.seed,
        window: cfg.window,
        runs: exhaustive_runs + walk_runs,
        exhaustive_runs,
        walk_runs,
        distinct: distinct.len(),
        max_decisions,
        max_batch,
        violations,
        digest,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small scenario with a fault inside the window: enough event
    /// traffic for real decision points, fast enough for debug tests.
    fn spec() -> ScenarioSpec {
        ScenarioSpec::from_toml_str(
            r#"
name = "explore_tiny"
horizon_secs = 18.0
seed = 3
capacity = 1e6
sinks = [3]

[topology]
kind = "ring"
n = 4

[controller]
attach = 2
default_flow_rate = 100000.0

[[workload]]
kind = "constant"
at = 5.0
src = 1
n = 10
rate = 1e5
video_secs = 60.0

[[event]]
at = 12.0
action = "fail_link"
a = 1
b = 2
"#,
        )
        .unwrap()
    }

    fn cfg() -> ExploreConfig {
        ExploreConfig {
            window: (11.5, 12.5),
            max_depth: 2,
            perm_cap: 2,
            max_runs: 6,
            walks: 4,
            seed: 9,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn exploration_is_deterministic_and_finds_interleavings() {
        let a = explore(&spec(), &cfg()).unwrap();
        let b = explore(&spec(), &cfg()).unwrap();
        assert_eq!(a.digest, b.digest, "same seed, same schedule set");
        assert_eq!(a.distinct, b.distinct);
        assert_eq!(a.violations, b.violations);
        assert!(
            a.distinct > 1,
            "window around the failure must expose ties: {a:?}"
        );
        assert!(a.max_decisions > 0);
        assert!(
            a.violations.is_empty(),
            "tiny ring is safe: {:?}",
            a.violations
        );
    }

    #[test]
    fn identity_only_exploration_counts_one_schedule() {
        let mut c = cfg();
        c.max_runs = 1; // identity only
        c.walks = 0;
        let out = explore(&spec(), &c).unwrap();
        assert_eq!(out.runs, 1);
        assert_eq!(out.distinct, 1);
    }
}
