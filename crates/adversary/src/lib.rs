//! # fib-adversary — hunt the races and QoE cliffs nobody scripted
//!
//! Every pinned artifact in this workspace proves the simulator is
//! deterministic; none of them proves the *system under test* is
//! robust to orderings the stable FIFO tie-break happens not to
//! produce. Real networks have no such tie-break: an LSA and an SNMP
//! poll landing "at the same time" arrive in whichever order the wires
//! decide. This crate attacks that gap from two sides:
//!
//! * the **schedule explorer** ([`explore`]) replays a pinned scenario
//!   while driving the event kernel's [`fib_sim_kernel::TieBreak`]
//!   hook: within a time window around a fault instant it permutes
//!   every batch of same-timestamp events — exhaustively up to a
//!   bounded depth (Lehmer-unranked permutation plans), then with
//!   seeded random walks — and asserts safety invariants on every
//!   interleaving (forwarding loop-freedom at settle points, bounded
//!   unroutable flow-seconds, eventual lie retraction);
//! * the **scenario fuzzer** ([`fuzz`]) mutates [`ScenarioSpec`]s
//!   (shift/duplicate/reorder fault-script entries, scale crowds and
//!   capacities, retarget link faults onto bridges), scores runs for
//!   invariant violations and QoE cliffs, **minimizes** finds by
//!   greedy mutation-reversal, and archives them as replayable
//!   regression files under `scenarios/found/` with an `[expect]`
//!   stanza the suite runner enforces.
//!
//! Everything is deterministic: the same seed reproduces the same
//! plans, the same walks, the same finds, and the same schedule
//! fingerprints — CI double-runs the whole thing and byte-diffs the
//! artifact. Exploration decisions are additionally audited through
//! [`fib_trace::order`], so an exported Chrome trace of an adversary
//! run shows exactly which batches were reordered and how.
//!
//! See `docs/ADVERSARY.md` for the exploration model, the invariant
//! definitions, and the found-corpus lifecycle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod explore;
pub mod fuzz;
pub mod hook;
pub mod invariants;
pub mod minimize;
pub mod mutate;

pub use fib_scenario::prelude::ScenarioSpec;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::explore::{explore, ExploreConfig, ExploreOutcome};
    pub use crate::fuzz::{archive_find, fuzz, Find, FuzzConfig, FuzzOutcome};
    pub use crate::hook::{
        factorial, fingerprint, new_log, unrank, PlanHook, RandomHook, ScheduleLog,
    };
    pub use crate::invariants::{Baseline, InvariantConfig};
    pub use crate::minimize::minimize;
    pub use crate::mutate::{apply, apply_all, bridges, gen_mutations, Mutation};
}
