//! Greedy find minimization by mutation reversal.
//!
//! A fuzzer find is a mutation sequence whose application trips an
//! invariant or a QoE cliff. Most of those mutations are incidental:
//! the minimizer drops one mutation at a time, re-checks whether the
//! shrunk sequence still reproduces, keeps the drop if it does, and
//! repeats until a full pass removes nothing. The result is 1-minimal
//! (no single mutation can be removed), which is what gets archived.

use crate::mutate::{apply_all, Mutation};
use fib_scenario::prelude::ScenarioSpec;

/// Shrink `mutations` to a 1-minimal subsequence that still satisfies
/// `reproduces` on the mutated spec. `reproduces` is called with the
/// spec obtained by applying the candidate sequence to `base`; it must
/// be deterministic. Returns the (possibly empty) minimal sequence.
pub fn minimize<F>(base: &ScenarioSpec, mutations: &[Mutation], mut reproduces: F) -> Vec<Mutation>
where
    F: FnMut(&ScenarioSpec) -> bool,
{
    let mut kept: Vec<Mutation> = mutations.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < kept.len() {
            let mut candidate = kept.clone();
            candidate.remove(i);
            if reproduces(&apply_all(base, &candidate)) {
                kept = candidate;
                shrunk = true;
                // Same index now names the next mutation; retry it.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return kept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpec {
        ScenarioSpec::from_toml_str(
            r#"
name = "min_base"
horizon_secs = 30.0
capacity = 1e6

[topology]
kind = "line"
n = 3

[[workload]]
kind = "constant"
at = 2.0
src = 1
n = 4
rate = 1e5
video_secs = 60.0

[[event]]
at = 10.0
action = "fail_link"
a = 1
b = 2
"#,
        )
        .unwrap()
    }

    /// "Reproduces" when the capacity ended up below half the base —
    /// only the capacity scalings matter, the rest is noise to shed.
    fn repro(s: &ScenarioSpec) -> bool {
        s.capacity < 0.5e6
    }

    #[test]
    fn minimizer_sheds_incidental_mutations() {
        let seq = vec![
            Mutation::ShiftEvent {
                idx: 0,
                delta_secs: 2.0,
            },
            Mutation::ScaleCapacity { factor: 0.4 },
            Mutation::DuplicateEvent {
                idx: 0,
                at_secs: 20.0,
            },
            Mutation::ScaleCrowd {
                idx: 0,
                factor: 2.0,
            },
        ];
        let b = base();
        assert!(repro(&apply_all(&b, &seq)), "full find reproduces");
        let min = minimize(&b, &seq, repro);
        assert_eq!(min, vec![Mutation::ScaleCapacity { factor: 0.4 }]);
    }

    #[test]
    fn minimizer_is_idempotent_on_minimal_finds() {
        let b = base();
        let minimal = vec![Mutation::ScaleCapacity { factor: 0.4 }];
        let once = minimize(&b, &minimal, repro);
        assert_eq!(once, minimal, "already-minimal find is untouched");
        let twice = minimize(&b, &once, repro);
        assert_eq!(twice, once);
    }

    #[test]
    fn minimizer_keeps_jointly_necessary_mutations() {
        // Two 0.8 scalings only reproduce together (0.64 < 0.5? no —
        // use 0.6: 0.6*0.6 = 0.36 < 0.5, each alone is 0.6 ≥ 0.5).
        let seq = vec![
            Mutation::ScaleCapacity { factor: 0.6 },
            Mutation::ShiftEvent {
                idx: 0,
                delta_secs: 1.0,
            },
            Mutation::ScaleCapacity { factor: 0.6 },
        ];
        let b = base();
        let min = minimize(&b, &seq, repro);
        assert_eq!(
            min,
            vec![
                Mutation::ScaleCapacity { factor: 0.6 },
                Mutation::ScaleCapacity { factor: 0.6 },
            ],
            "both scalings are load-bearing, the shift is not"
        );
    }
}
