//! The safety invariants every explored interleaving must satisfy.
//!
//! A permuted schedule is allowed to change *performance* (different
//! orderings legitimately shift when flows see the new routes), but
//! not *safety*. Three invariants capture that line:
//!
//! 1. **Forwarding loop-freedom** — at no settle point may any
//!    prefix's forwarding graph contain a cycle (the loop probe in
//!    `fib_netsim` checks every settle when armed). Relative to the
//!    identity run: transient micro-loops during IGP reconvergence
//!    are a textbook property of link-state networks and some fault
//!    scripts exhibit them under the stock schedule too — but if the
//!    stock schedule is loop-free, no reordering may introduce one.
//! 2. **Bounded unroutable flow-seconds** — reordering deliveries
//!    inside a small window may lengthen a convergence gap slightly,
//!    but not open a blackout. The bound is relative to the identity
//!    run: `factor × baseline + slack`.
//! 3. **Eventual lie retraction** — if the identity schedule ends
//!    with every lie retracted, so must every explored interleaving:
//!    a lie that survives only under some orderings is a retraction
//!    race.

use fib_scenario::prelude::ScenarioReport;

/// Bounds configuration for the relative invariants.
#[derive(Debug, Clone, Copy)]
pub struct InvariantConfig {
    /// Multiplier on the identity run's unroutable flow-seconds.
    pub unroutable_factor: f64,
    /// Additive slack (flow-seconds) on top of the scaled baseline,
    /// so a zero-blackout baseline still tolerates sub-slack jitter.
    pub unroutable_slack_secs: f64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            unroutable_factor: 10.0,
            unroutable_slack_secs: 5.0,
        }
    }
}

/// What the identity (stock-FIFO) run of the scenario looked like;
/// the relative invariants compare against this.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline {
    /// Identity run's integrated unroutable flow-seconds.
    pub unroutable_flow_secs: f64,
    /// Identity run's lies still installed at the horizon.
    pub final_lies: u64,
    /// Identity run's settle points with a forwarding loop (some
    /// fault scripts micro-loop during reconvergence even under the
    /// stock schedule).
    pub fwd_loop_settles: u64,
}

impl Baseline {
    /// Extract the baseline from the identity run's report.
    pub fn from_report(report: &ScenarioReport) -> Baseline {
        Baseline {
            unroutable_flow_secs: report.unroutable_flow_secs,
            final_lies: report.final_lies,
            fwd_loop_settles: report.fwd_loop_settles,
        }
    }
}

/// Check one explored run against the invariants. `label` names the
/// schedule (a plan or walk id); `loop_details` carries the rendered
/// cycles the loop probe logged (may be truncated by its cap).
/// Returns one violation string per broken invariant, empty if safe.
pub fn check(
    label: &str,
    report: &ScenarioReport,
    loop_details: &[String],
    baseline: &Baseline,
    cfg: &InvariantConfig,
) -> Vec<String> {
    let mut out = Vec::new();
    if baseline.fwd_loop_settles == 0 && report.fwd_loop_settles > 0 {
        let detail = if loop_details.is_empty() {
            String::new()
        } else {
            format!(" ({})", loop_details.join("; "))
        };
        out.push(format!(
            "{label}: forwarding loop at {} settle point(s){detail}",
            report.fwd_loop_settles
        ));
    }
    let bound = cfg.unroutable_factor * baseline.unroutable_flow_secs + cfg.unroutable_slack_secs;
    if report.unroutable_flow_secs > bound {
        out.push(format!(
            "{label}: unroutable flow-seconds {:.6} exceed bound {:.6} \
             (= {} x baseline {:.6} + {} slack)",
            report.unroutable_flow_secs,
            bound,
            cfg.unroutable_factor,
            baseline.unroutable_flow_secs,
            cfg.unroutable_slack_secs
        ));
    }
    if baseline.final_lies == 0 && report.final_lies > 0 {
        out.push(format!(
            "{label}: {} lie(s) never retracted (identity schedule retracts all) \
             — retraction race",
            report.final_lies
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_video::prelude::QoeSummary;

    fn report() -> ScenarioReport {
        ScenarioReport {
            name: "t".into(),
            seed: 1,
            horizon_secs: 10.0,
            routers: 3,
            links: 3,
            sessions: 1,
            max_util: 0.5,
            mean_util: 0.2,
            peak_lies: 1,
            final_lies: 0,
            injections: 1,
            retractions: 1,
            reactions: 1,
            reaction_secs: None,
            unroutable_flow_secs: 0.0,
            fwd_loop_settles: 0,
            ctrl_pkts: 0,
            ctrl_bytes: 0,
            qoe: QoeSummary::default(),
            trace_csv: String::new(),
        }
    }

    #[test]
    fn clean_run_passes() {
        let b = Baseline::default();
        assert!(check("id", &report(), &[], &b, &InvariantConfig::default()).is_empty());
    }

    #[test]
    fn each_invariant_trips_independently() {
        let cfg = InvariantConfig::default();
        let base = Baseline {
            unroutable_flow_secs: 1.0,
            final_lies: 0,
            fwd_loop_settles: 0,
        };
        let mut loops = report();
        loops.fwd_loop_settles = 2;
        let v = check("p", &loops, &["cycle 1->2->1".into()], &base, &cfg);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("forwarding loop") && v[0].contains("cycle 1->2->1"));
        // Not a violation when the identity schedule micro-loops too.
        let loopy_base = Baseline {
            fwd_loop_settles: 1,
            ..base
        };
        assert!(check("p", &loops, &[], &loopy_base, &cfg).is_empty());

        let mut blackout = report();
        blackout.unroutable_flow_secs = 100.0;
        let v = check("p", &blackout, &[], &base, &cfg);
        assert_eq!(v.len(), 1, "bound is 10*1+5=15: {v:?}");
        assert!(v[0].contains("exceed bound"));

        let mut stuck = report();
        stuck.final_lies = 3;
        let v = check("p", &stuck, &[], &base, &cfg);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("retraction race"));
        // Not a violation when the baseline itself keeps lies.
        let dirty_base = Baseline {
            final_lies: 1,
            ..base
        };
        assert!(check("p", &stuck, &[], &dirty_base, &cfg).is_empty());
    }
}
