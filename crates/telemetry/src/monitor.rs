//! Link-load monitoring: counters → rates → utilization alarms.
//!
//! [`LoadMonitor`] is the composed pipeline the Fibbing controller
//! consumes: per monitored key (a directed link), counter samples feed
//! a [`RateEstimator`], the rate is normalized by capacity into a
//! utilization, and a hysteresis [`Alarm`] decides when the controller
//! should care. One struct per management station.

use crate::alarm::{Alarm, Edge, Threshold};
use crate::counters::CounterWidth;
use crate::rate::RateEstimator;
use fib_igp::time::Timestamp;
use std::collections::BTreeMap;

/// A utilization alarm event for one monitored key.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadEvent<K> {
    /// The monitored key (e.g. a directed link).
    pub key: K,
    /// Raised or cleared.
    pub edge: Edge,
    /// Utilization at the edge (fraction of capacity).
    pub utilization: f64,
    /// Estimated rate in bytes/s at the edge.
    pub rate: f64,
}

#[derive(Debug)]
struct Entry {
    capacity: f64,
    est: RateEstimator,
    alarm: Alarm,
    last_util: f64,
}

/// Composed monitoring pipeline for a set of keys.
#[derive(Debug)]
pub struct LoadMonitor<K: Ord + Clone> {
    width: CounterWidth,
    alpha: f64,
    threshold: Threshold,
    entries: BTreeMap<K, Entry>,
}

impl<K: Ord + Clone> LoadMonitor<K> {
    /// Create a monitor. `alpha` is the EWMA weight; `threshold` the
    /// shared utilization alarm config.
    pub fn new(width: CounterWidth, alpha: f64, threshold: Threshold) -> LoadMonitor<K> {
        LoadMonitor {
            width,
            alpha,
            threshold,
            entries: BTreeMap::new(),
        }
    }

    /// Track a key with the given capacity (bytes/s).
    pub fn add(&mut self, key: K, capacity: f64) {
        assert!(capacity > 0.0, "capacity must be positive");
        self.entries.insert(
            key,
            Entry {
                capacity,
                est: RateEstimator::new(self.width, self.alpha),
                alarm: Alarm::new(self.threshold),
                last_util: 0.0,
            },
        );
    }

    /// Stop tracking a key.
    pub fn remove(&mut self, key: &K) {
        self.entries.remove(key);
    }

    /// Feed one polled counter value; returns an alarm event if the
    /// utilization crossed a threshold (with hold-down).
    pub fn on_sample(&mut self, key: &K, at: Timestamp, counter: u64) -> Option<LoadEvent<K>> {
        let e = self.entries.get_mut(key)?;
        let rate = e.est.observe(at, counter)?;
        let util = rate / e.capacity;
        e.last_util = util;
        e.alarm.observe(at, util).map(|edge| LoadEvent {
            key: key.clone(),
            edge,
            utilization: util,
            rate,
        })
    }

    /// Most recent utilization of a key (0 before the first interval).
    pub fn utilization(&self, key: &K) -> Option<f64> {
        self.entries.get(key).map(|e| e.last_util)
    }

    /// Most recent smoothed rate of a key.
    pub fn rate(&self, key: &K) -> Option<f64> {
        self.entries.get(key).and_then(|e| e.est.rate())
    }

    /// Whether the alarm for a key is currently raised.
    pub fn is_alarmed(&self, key: &K) -> bool {
        self.entries
            .get(key)
            .map(|e| e.alarm.is_active())
            .unwrap_or(false)
    }

    /// Keys with raised alarms.
    pub fn alarmed_keys(&self) -> Vec<K> {
        self.entries
            .iter()
            .filter(|(_, e)| e.alarm.is_active())
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// All tracked keys.
    pub fn keys(&self) -> Vec<K> {
        self.entries.keys().cloned().collect()
    }

    /// Highest current utilization across all keys (0 if none).
    pub fn max_utilization(&self) -> f64 {
        self.entries
            .values()
            .map(|e| e.last_util)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::time::Dur;

    fn t(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    fn monitor() -> LoadMonitor<&'static str> {
        let mut m = LoadMonitor::new(CounterWidth::C64, 1.0, Threshold::new(0.8, 0.4, Dur::ZERO));
        m.add("a-b", 1000.0); // 1000 B/s capacity
        m
    }

    #[test]
    fn pipeline_raises_on_high_utilization() {
        let mut m = monitor();
        assert_eq!(m.on_sample(&"a-b", t(0), 0), None);
        // 900 B over 1 s → util 0.9 ≥ 0.8 → raise.
        let ev = m.on_sample(&"a-b", t(1), 900).expect("raise");
        assert_eq!(ev.edge, Edge::Raised);
        assert!((ev.utilization - 0.9).abs() < 1e-9);
        assert!(m.is_alarmed(&"a-b"));
        assert_eq!(m.alarmed_keys(), vec!["a-b"]);
    }

    #[test]
    fn pipeline_clears_with_hysteresis() {
        let mut m = monitor();
        m.on_sample(&"a-b", t(0), 0);
        m.on_sample(&"a-b", t(1), 900);
        // util 0.5: inside hysteresis band → still raised.
        assert_eq!(m.on_sample(&"a-b", t(2), 1400), None);
        assert!(m.is_alarmed(&"a-b"));
        // util 0.1 ≤ 0.4 → clear.
        let ev = m.on_sample(&"a-b", t(3), 1500).expect("clear");
        assert_eq!(ev.edge, Edge::Cleared);
        assert!(!m.is_alarmed(&"a-b"));
    }

    #[test]
    fn unknown_key_is_none() {
        let mut m = monitor();
        assert_eq!(m.on_sample(&"nope", t(0), 0), None);
        assert_eq!(m.utilization(&"nope"), None);
        assert!(!m.is_alarmed(&"nope"));
    }

    #[test]
    fn max_utilization_tracks_peak() {
        let mut m = monitor();
        m.add("c-d", 2000.0);
        m.on_sample(&"a-b", t(0), 0);
        m.on_sample(&"c-d", t(0), 0);
        m.on_sample(&"a-b", t(1), 300); // 0.3
        m.on_sample(&"c-d", t(1), 1200); // 0.6
        assert!((m.max_utilization() - 0.6).abs() < 1e-9);
    }
}
