//! Interface octet/packet counters with SNMP wrap semantics.
//!
//! Real SNMP agents expose `ifInOctets`/`ifOutOctets` as 32-bit
//! counters (ifTable) and 64-bit ones (ifXTable). Pollers must handle
//! wraps; we reproduce both widths so the rate-estimation pipeline is
//! exercised the way a real NMS exercises it — on a 10 Mb/s-class link
//! a 32-bit octet counter wraps in under an hour, well within demo
//! timescales once polling is slow.

use std::fmt;

/// Width of an SNMP counter object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterWidth {
    /// 32-bit `Counter32` (ifTable).
    C32,
    /// 64-bit `Counter64` (ifXTable).
    C64,
}

impl CounterWidth {
    /// The modulus of the counter (2^32 or 2^64).
    pub fn modulus(self) -> u128 {
        match self {
            CounterWidth::C32 => 1 << 32,
            CounterWidth::C64 => 1 << 64,
        }
    }
}

/// A monotonically increasing counter exposed modulo its width.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    width: CounterWidth,
    total: u128,
}

impl Counter {
    /// A zeroed counter of the given width.
    pub fn new(width: CounterWidth) -> Counter {
        Counter { width, total: 0 }
    }

    /// Accumulate `n` units.
    pub fn add(&mut self, n: u64) {
        self.total += u128::from(n);
    }

    /// The value a poller reads: the true total modulo the width.
    pub fn read(&self) -> u64 {
        (self.total % self.width.modulus()) as u64
    }

    /// The unwrapped total (not observable via SNMP; used by tests and
    /// exact accounting).
    pub fn total(&self) -> u128 {
        self.total
    }

    /// The counter's width.
    pub fn width(&self) -> CounterWidth {
        self.width
    }
}

/// Compute the delta between two successive reads of a counter,
/// assuming at most one wrap (standard NMS practice).
pub fn counter_delta(width: CounterWidth, prev: u64, cur: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        let m = width.modulus();
        ((u128::from(cur) + m) - u128::from(prev)) as u64
    }
}

/// Per-interface counter set (the ifTable row subset we model).
#[derive(Debug, Clone)]
pub struct IfaceCounters {
    /// Octets received by the interface.
    pub in_octets: Counter,
    /// Octets transmitted by the interface.
    pub out_octets: Counter,
    /// Packets received.
    pub in_pkts: Counter,
    /// Packets transmitted.
    pub out_pkts: Counter,
}

impl IfaceCounters {
    /// Fresh counters of uniform width.
    pub fn new(width: CounterWidth) -> IfaceCounters {
        IfaceCounters {
            in_octets: Counter::new(width),
            out_octets: Counter::new(width),
            in_pkts: Counter::new(width),
            out_pkts: Counter::new(width),
        }
    }

    /// Record a transmitted packet of `bytes` octets.
    pub fn count_tx(&mut self, bytes: u64) {
        self.out_octets.add(bytes);
        self.out_pkts.add(1);
    }

    /// Record a received packet of `bytes` octets.
    pub fn count_rx(&mut self, bytes: u64) {
        self.in_octets.add(bytes);
        self.in_pkts.add(1);
    }
}

impl fmt::Display for IfaceCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in={}B/{}p out={}B/{}p",
            self.in_octets.read(),
            self.in_pkts.read(),
            self.out_octets.read(),
            self.out_pkts.read()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_wraps_at_width() {
        let mut c = Counter::new(CounterWidth::C32);
        c.add(u32::MAX as u64);
        assert_eq!(c.read(), u32::MAX as u64);
        c.add(3);
        assert_eq!(c.read(), 2); // wrapped
        assert_eq!(c.total(), u32::MAX as u128 + 3);
    }

    #[test]
    fn counter64_effectively_never_wraps() {
        let mut c = Counter::new(CounterWidth::C64);
        c.add(u64::MAX / 2);
        c.add(u64::MAX / 2);
        assert_eq!(c.read(), u64::MAX - 1);
    }

    #[test]
    fn delta_handles_single_wrap() {
        assert_eq!(counter_delta(CounterWidth::C32, 100, 300), 200);
        // prev near top, cur small: one wrap.
        let prev = u32::MAX as u64 - 10;
        assert_eq!(counter_delta(CounterWidth::C32, prev, 20), 31);
        assert_eq!(counter_delta(CounterWidth::C64, u64::MAX - 1, 1), 3);
    }

    #[test]
    fn iface_counters_track_directions() {
        let mut ic = IfaceCounters::new(CounterWidth::C64);
        ic.count_tx(1500);
        ic.count_tx(40);
        ic.count_rx(9000);
        assert_eq!(ic.out_octets.read(), 1540);
        assert_eq!(ic.out_pkts.read(), 2);
        assert_eq!(ic.in_octets.read(), 9000);
        assert_eq!(ic.in_pkts.read(), 1);
        assert!(format!("{ic}").contains("out=1540B/2p"));
    }
}
