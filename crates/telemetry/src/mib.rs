//! A minimal MIB: OIDs, the ifTable subset, and GET/GETNEXT/WALK.
//!
//! The Fibbing controller of the demo monitors link loads over SNMP.
//! We model the part of SNMP that matters for that loop: an agent per
//! router exposing interface counters under the standard ifTable OIDs,
//! with exact GET and lexicographic GETNEXT semantics (WALK = iterated
//! GETNEXT under a prefix).

use crate::counters::IfaceCounters;
use std::collections::BTreeMap;
use std::fmt;

/// An SNMP object identifier (sequence of sub-identifiers).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub Vec<u32>);

impl Oid {
    /// Build from a slice.
    pub fn new(parts: &[u32]) -> Oid {
        Oid(parts.to_vec())
    }

    /// This OID with one more sub-identifier appended.
    pub fn child(&self, sub: u32) -> Oid {
        let mut v = self.0.clone();
        v.push(sub);
        Oid(v)
    }

    /// `true` if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Oid) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|p| p.to_string()).collect();
        write!(f, ".{}", parts.join("."))
    }
}

/// Well-known OIDs (the ifTable columns we expose).
pub mod oids {
    use super::Oid;

    /// `ifIndex` column: .1.3.6.1.2.1.2.2.1.1
    pub fn if_index() -> Oid {
        Oid::new(&[1, 3, 6, 1, 2, 1, 2, 2, 1, 1])
    }
    /// `ifInOctets` column: .1.3.6.1.2.1.2.2.1.10
    pub fn if_in_octets() -> Oid {
        Oid::new(&[1, 3, 6, 1, 2, 1, 2, 2, 1, 10])
    }
    /// `ifOutOctets` column: .1.3.6.1.2.1.2.2.1.16
    pub fn if_out_octets() -> Oid {
        Oid::new(&[1, 3, 6, 1, 2, 1, 2, 2, 1, 16])
    }
    /// `ifInUcastPkts` column: .1.3.6.1.2.1.2.2.1.11
    pub fn if_in_pkts() -> Oid {
        Oid::new(&[1, 3, 6, 1, 2, 1, 2, 2, 1, 11])
    }
    /// `ifOutUcastPkts` column: .1.3.6.1.2.1.2.2.1.17
    pub fn if_out_pkts() -> Oid {
        Oid::new(&[1, 3, 6, 1, 2, 1, 2, 2, 1, 17])
    }
    /// `sysName`: .1.3.6.1.2.1.1.5.0
    pub fn sys_name() -> Oid {
        Oid::new(&[1, 3, 6, 1, 2, 1, 1, 5, 0])
    }
}

/// A value bound to an OID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A counter object.
    Counter(u64),
    /// An integer object.
    Int(i64),
    /// An octet-string object.
    Str(String),
}

/// An SNMP agent: one per router, exposing its interfaces' counters.
#[derive(Debug, Clone)]
pub struct Agent {
    /// Agent system name (diagnostics).
    pub sys_name: String,
    ifaces: BTreeMap<u32, IfaceCounters>,
}

impl Agent {
    /// An agent with no interfaces yet.
    pub fn new(sys_name: impl Into<String>) -> Agent {
        Agent {
            sys_name: sys_name.into(),
            ifaces: BTreeMap::new(),
        }
    }

    /// Register an interface (ifIndex) with its counters.
    pub fn add_iface(&mut self, ifindex: u32, counters: IfaceCounters) {
        self.ifaces.insert(ifindex, counters);
    }

    /// Mutable access to an interface's counters (the data plane calls
    /// this to account traffic).
    pub fn counters_mut(&mut self, ifindex: u32) -> Option<&mut IfaceCounters> {
        self.ifaces.get_mut(&ifindex)
    }

    /// Immutable access to counters.
    pub fn counters(&self, ifindex: u32) -> Option<&IfaceCounters> {
        self.ifaces.get(&ifindex)
    }

    /// Registered interface indexes.
    pub fn ifindexes(&self) -> Vec<u32> {
        self.ifaces.keys().copied().collect()
    }

    /// The agent's full sorted view (materialized for GETNEXT).
    fn view(&self) -> Vec<(Oid, Value)> {
        let mut v: Vec<(Oid, Value)> = Vec::with_capacity(self.ifaces.len() * 5 + 1);
        v.push((oids::sys_name(), Value::Str(self.sys_name.clone())));
        for (&idx, c) in &self.ifaces {
            v.push((oids::if_index().child(idx), Value::Int(i64::from(idx))));
            v.push((
                oids::if_in_octets().child(idx),
                Value::Counter(c.in_octets.read()),
            ));
            v.push((
                oids::if_in_pkts().child(idx),
                Value::Counter(c.in_pkts.read()),
            ));
            v.push((
                oids::if_out_octets().child(idx),
                Value::Counter(c.out_octets.read()),
            ));
            v.push((
                oids::if_out_pkts().child(idx),
                Value::Counter(c.out_pkts.read()),
            ));
        }
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// SNMP GET: exact-match lookup.
    pub fn get(&self, oid: &Oid) -> Option<Value> {
        self.view()
            .into_iter()
            .find(|(o, _)| o == oid)
            .map(|(_, v)| v)
    }

    /// SNMP GETNEXT: first object strictly after `oid` in
    /// lexicographic order.
    pub fn get_next(&self, oid: &Oid) -> Option<(Oid, Value)> {
        self.view().into_iter().find(|(o, _)| o > oid)
    }

    /// SNMP WALK: every object under `prefix`.
    pub fn walk(&self, prefix: &Oid) -> Vec<(Oid, Value)> {
        let mut out = Vec::new();
        let mut cur = prefix.clone();
        while let Some((oid, val)) = self.get_next(&cur) {
            if !prefix.is_prefix_of(&oid) {
                break;
            }
            cur = oid.clone();
            out.push((oid, val));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterWidth;

    fn agent() -> Agent {
        let mut a = Agent::new("r1");
        let mut c0 = IfaceCounters::new(CounterWidth::C64);
        c0.count_tx(1000);
        c0.count_rx(500);
        a.add_iface(1, c0);
        a.add_iface(2, IfaceCounters::new(CounterWidth::C64));
        a
    }

    #[test]
    fn oid_display_and_prefix() {
        let o = oids::if_in_octets().child(3);
        assert_eq!(o.to_string(), ".1.3.6.1.2.1.2.2.1.10.3");
        assert!(oids::if_in_octets().is_prefix_of(&o));
        assert!(!o.is_prefix_of(&oids::if_in_octets()));
    }

    #[test]
    fn get_exact() {
        let a = agent();
        assert_eq!(
            a.get(&oids::if_out_octets().child(1)),
            Some(Value::Counter(1000))
        );
        assert_eq!(a.get(&oids::sys_name()), Some(Value::Str("r1".to_string())));
        assert_eq!(a.get(&oids::if_out_octets().child(9)), None);
    }

    #[test]
    fn get_next_is_lexicographic() {
        let a = agent();
        let (oid, _) = a.get_next(&oids::if_in_octets()).unwrap();
        assert_eq!(oid, oids::if_in_octets().child(1));
        let (oid2, _) = a.get_next(&oid).unwrap();
        assert_eq!(oid2, oids::if_in_octets().child(2));
    }

    #[test]
    fn walk_covers_column() {
        let a = agent();
        let col = a.walk(&oids::if_out_octets());
        assert_eq!(col.len(), 2);
        assert_eq!(col[0].1, Value::Counter(1000));
        assert_eq!(col[1].1, Value::Counter(0));
        // Walking an exact leaf yields nothing below it.
        assert!(a.walk(&oids::sys_name()).is_empty());
    }

    #[test]
    fn counters_update_through_agent() {
        let mut a = agent();
        a.counters_mut(2).unwrap().count_tx(77);
        assert_eq!(
            a.get(&oids::if_out_octets().child(2)),
            Some(Value::Counter(77))
        );
    }
}
