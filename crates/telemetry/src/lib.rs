//! # fib-telemetry — SNMP-style monitoring substrate
//!
//! The demo's Fibbing controller "monitors link loads using SNMP". This
//! crate reproduces the part of that pipeline that shapes controller
//! behaviour:
//!
//! * [`counters`] — ifTable-style octet/packet counters with 32/64-bit
//!   wrap semantics;
//! * [`mib`] — a minimal OID tree per agent with GET / GETNEXT / WALK;
//! * [`poller`] — jittered, deterministic poll scheduling;
//! * [`rate`] — counter-delta rate estimation with EWMA smoothing
//!   (wrap-transparent);
//! * [`alarm`] — utilization thresholds with hysteresis and hold-down;
//! * [`monitor`] — the composed pipeline: samples in, alarm edges out;
//! * [`rollup`] — named-counter rollups merging per-run snapshots
//!   into fleet totals (the sweep engine's aggregate counter view).
//!
//! Everything is deterministic (seeded jitter) and free of IO: the
//! simulator delivers counter samples and timestamps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alarm;
pub mod counters;
pub mod mib;
pub mod monitor;
pub mod poller;
pub mod rate;
pub mod rollup;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::alarm::{Alarm, Edge, Threshold};
    pub use crate::counters::{counter_delta, Counter, CounterWidth, IfaceCounters};
    pub use crate::mib::{oids, Agent, Oid, Value};
    pub use crate::monitor::{LoadEvent, LoadMonitor};
    pub use crate::poller::Poller;
    pub use crate::rate::RateEstimator;
    pub use crate::rollup::Rollup;
}
