//! Poll scheduling with per-target jitter.
//!
//! An NMS polls many agents at a nominal interval, de-synchronized by
//! jitter so requests don't burst. The scheduler is generic over the
//! target key (the simulator uses directed link identifiers).

use fib_igp::time::{Dur, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Deterministic jittered poll scheduler.
#[derive(Debug)]
pub struct Poller<K: Ord + Clone> {
    interval: Dur,
    jitter_frac: f64,
    rng: StdRng,
    next_due: BTreeMap<K, Timestamp>,
}

impl<K: Ord + Clone> Poller<K> {
    /// Create a scheduler. `jitter_frac` in `[0, 1)` is the fraction of
    /// the interval randomized per poll (0 = strictly periodic).
    pub fn new(interval: Dur, jitter_frac: f64, seed: u64) -> Poller<K> {
        assert!((0.0..1.0).contains(&jitter_frac));
        assert!(interval > Dur::ZERO, "poll interval must be positive");
        Poller {
            interval,
            jitter_frac,
            rng: StdRng::seed_from_u64(seed),
            next_due: BTreeMap::new(),
        }
    }

    /// The nominal polling interval.
    pub fn interval(&self) -> Dur {
        self.interval
    }

    /// Register a target; first poll is due at `start` plus a random
    /// phase within one interval (classic NMS de-synchronization).
    pub fn add_target(&mut self, key: K, start: Timestamp) {
        let phase = Dur((self.rng.gen::<f64>() * self.interval.0 as f64) as u64);
        self.next_due.insert(key, start + phase);
    }

    /// Remove a target.
    pub fn remove_target(&mut self, key: &K) {
        self.next_due.remove(key);
    }

    /// Targets due at or before `now`; reschedules each for its next
    /// poll (interval ± jitter).
    pub fn due(&mut self, now: Timestamp) -> Vec<K> {
        let due: Vec<K> = self
            .next_due
            .iter()
            .filter(|(_, t)| **t <= now)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &due {
            let jitter = if self.jitter_frac == 0.0 {
                0.0
            } else {
                (self.rng.gen::<f64>() * 2.0 - 1.0) * self.jitter_frac
            };
            let next = Dur(((self.interval.0 as f64) * (1.0 + jitter)).max(1.0) as u64);
            self.next_due.insert(k.clone(), now + next);
        }
        due
    }

    /// Earliest pending deadline.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.next_due.values().min().copied()
    }

    /// Number of registered targets.
    pub fn len(&self) -> usize {
        self.next_due.len()
    }

    /// `true` if no targets are registered.
    pub fn is_empty(&self) -> bool {
        self.next_due.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_become_due_and_reschedule() {
        let mut p: Poller<u32> = Poller::new(Dur::from_secs(1), 0.0, 7);
        p.add_target(1, Timestamp::ZERO);
        p.add_target(2, Timestamp::ZERO);
        assert_eq!(p.len(), 2);
        // Everything due within the first interval.
        let due = p.due(Timestamp::from_secs(1));
        assert_eq!(due.len(), 2);
        // Nothing due immediately after.
        assert!(p.due(Timestamp::from_secs(1)).is_empty());
        // Due again one interval later.
        let due = p.due(Timestamp::from_secs(2) + Dur::from_millis(1));
        assert_eq!(due.len(), 2);
    }

    #[test]
    fn phases_are_deterministic_per_seed() {
        let mk = |seed| {
            let mut p: Poller<u32> = Poller::new(Dur::from_secs(10), 0.2, seed);
            p.add_target(1, Timestamp::ZERO);
            p.next_deadline().unwrap()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn remove_target_stops_polls() {
        let mut p: Poller<u32> = Poller::new(Dur::from_secs(1), 0.0, 7);
        p.add_target(1, Timestamp::ZERO);
        p.remove_target(&1);
        assert!(p.is_empty());
        assert!(p.due(Timestamp::from_secs(100)).is_empty());
        assert_eq!(p.next_deadline(), None);
    }

    #[test]
    fn jitter_stays_bounded() {
        let mut p: Poller<u32> = Poller::new(Dur::from_secs(10), 0.1, 3);
        p.add_target(1, Timestamp::ZERO);
        for _ in 0..50 {
            let now = p.next_deadline().unwrap();
            let due = p.due(now);
            assert_eq!(due.len(), 1);
            let next = p.next_deadline().unwrap();
            let gap = (next - now).as_secs_f64();
            assert!((9.0..=11.0).contains(&gap), "gap {gap}s out of bounds");
        }
    }
}
