//! Rate estimation from polled counters.
//!
//! A poller reads a monotone (wrapping) counter at intervals; the
//! estimator turns successive reads into bytes/s, optionally smoothed
//! with an EWMA. Smoothing matters for the controller: raw per-poll
//! rates on bursty traffic flap threshold alarms, and the paper's
//! controller must not oscillate lies in and out.

use crate::counters::{counter_delta, CounterWidth};
use fib_igp::time::Timestamp;

/// Turns counter samples into a smoothed rate (units/second).
#[derive(Debug, Clone)]
pub struct RateEstimator {
    width: CounterWidth,
    alpha: f64,
    last: Option<(Timestamp, u64)>,
    ewma: Option<f64>,
    instant: Option<f64>,
}

impl RateEstimator {
    /// Create an estimator. `alpha` is the EWMA weight of the newest
    /// sample in `(0, 1]`; `alpha = 1.0` disables smoothing.
    pub fn new(width: CounterWidth, alpha: f64) -> RateEstimator {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        RateEstimator {
            width,
            alpha,
            last: None,
            ewma: None,
            instant: None,
        }
    }

    /// Feed one counter read. Returns the new smoothed rate if this
    /// sample completed an interval.
    pub fn observe(&mut self, at: Timestamp, counter: u64) -> Option<f64> {
        let prev = self.last.replace((at, counter));
        let (t0, c0) = prev?;
        if at <= t0 {
            return self.ewma; // duplicate or out-of-order poll
        }
        let dt = (at - t0).as_secs_f64();
        let delta = counter_delta(self.width, c0, counter) as f64;
        let rate = delta / dt;
        self.instant = Some(rate);
        self.ewma = Some(match self.ewma {
            None => rate,
            Some(prev) => self.alpha * rate + (1.0 - self.alpha) * prev,
        });
        self.ewma
    }

    /// The current smoothed rate, if at least two samples were seen.
    pub fn rate(&self) -> Option<f64> {
        self.ewma
    }

    /// The most recent unsmoothed per-interval rate.
    pub fn instant_rate(&self) -> Option<f64> {
        self.instant
    }

    /// Forget all history (e.g. after an agent restart is detected).
    pub fn reset(&mut self) {
        self.last = None;
        self.ewma = None;
        self.instant = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn needs_two_samples() {
        let mut e = RateEstimator::new(CounterWidth::C64, 1.0);
        assert_eq!(e.observe(t(0), 0), None);
        assert_eq!(e.rate(), None);
        let r = e.observe(t(1), 1000).unwrap();
        assert!((r - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn rate_accounts_for_interval_length() {
        let mut e = RateEstimator::new(CounterWidth::C64, 1.0);
        e.observe(t(0), 0);
        let r = e.observe(t(4), 8000).unwrap();
        assert!((r - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_is_transparent() {
        let mut e = RateEstimator::new(CounterWidth::C32, 1.0);
        e.observe(t(0), u32::MAX as u64 - 499);
        let r = e.observe(t(1), 500).unwrap();
        assert!((r - 1000.0).abs() < 1e-9, "rate {r}");
    }

    #[test]
    fn ewma_smooths() {
        let mut e = RateEstimator::new(CounterWidth::C64, 0.5);
        e.observe(t(0), 0);
        e.observe(t(1), 1000); // ewma = 1000
        let r = e.observe(t(2), 1000).unwrap(); // instant 0 → ewma 500
        assert!((r - 500.0).abs() < 1e-9);
        assert_eq!(e.instant_rate(), Some(0.0));
    }

    #[test]
    fn duplicate_poll_is_ignored() {
        let mut e = RateEstimator::new(CounterWidth::C64, 1.0);
        e.observe(t(0), 0);
        e.observe(t(1), 100);
        let before = e.rate();
        let after = e.observe(t(1), 100);
        assert_eq!(before, after);
    }

    #[test]
    fn reset_forgets() {
        let mut e = RateEstimator::new(CounterWidth::C64, 1.0);
        e.observe(t(0), 0);
        e.observe(t(1), 100);
        e.reset();
        assert_eq!(e.rate(), None);
        assert_eq!(e.observe(t(2), 500), None);
    }

    proptest! {
        /// For any monotone counter trace sampled at 1 Hz with
        /// alpha = 1, every reported rate equals the per-second delta
        /// and is never negative.
        #[test]
        fn prop_rates_match_deltas(deltas in proptest::collection::vec(0u64..2_000_000, 1..50)) {
            let mut e = RateEstimator::new(CounterWidth::C64, 1.0);
            let mut counter = 0u64;
            e.observe(t(0), counter);
            for (i, d) in deltas.iter().enumerate() {
                counter += d;
                let r = e.observe(t(i as u64 + 1), counter).unwrap();
                prop_assert!((r - *d as f64).abs() < 1e-6);
                prop_assert!(r >= 0.0);
            }
        }

        /// EWMA output always lies within [min, max] of instant rates.
        #[test]
        fn prop_ewma_bounded(deltas in proptest::collection::vec(0u64..2_000_000, 2..50),
                             alpha in 0.05f64..1.0) {
            let mut e = RateEstimator::new(CounterWidth::C64, alpha);
            let mut counter = 0u64;
            e.observe(t(0), counter);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (i, d) in deltas.iter().enumerate() {
                counter += d;
                let r = e.observe(t(i as u64 + 1), counter).unwrap();
                lo = lo.min(*d as f64);
                hi = hi.max(*d as f64);
                prop_assert!(r >= lo - 1e-6 && r <= hi + 1e-6,
                    "ewma {r} escaped [{lo}, {hi}]");
            }
        }
    }
}
