//! Named-counter rollups: merge per-run counter snapshots into
//! fleet-level totals.
//!
//! The sweep engine runs hundreds of independent simulations and wants
//! one aggregate view of the machinery counters each run produced
//! (events dispatched, SPF runs, allocator fills, …). A [`Rollup`] is
//! a deterministic ordered multiset of named `u64` counters: insertion
//! order never matters (keys are kept sorted), so merging per-cell
//! rollups collected from worker threads in any order yields the same
//! totals — a property the sweep's byte-identical-output guarantee
//! leans on.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered bag of named `u64` counters with saturating totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rollup {
    counters: BTreeMap<&'static str, u64>,
}

impl Rollup {
    /// An empty rollup.
    pub fn new() -> Rollup {
        Rollup::default()
    }

    /// Add `v` to the counter `name` (creating it at zero).
    ///
    /// Saturating: a sweep total can exceed `u64::MAX` only through a
    /// pathological grid, but a silent wraparound in a CI artifact
    /// would be worse than a pinned ceiling.
    pub fn add(&mut self, name: &'static str, v: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(v);
    }

    /// Fold another rollup's counters into this one.
    pub fn merge(&mut self, other: &Rollup) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
    }

    /// The value of counter `name` (zero if never added).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterate counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the rollup is empty.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for Rollup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut r = Rollup::new();
        assert!(r.is_empty());
        r.add("events", 10);
        r.add("events", 5);
        r.add("spf_full", 2);
        assert_eq!(r.get("events"), 15);
        assert_eq!(r.get("spf_full"), 2);
        assert_eq!(r.get("missing"), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Rollup::new();
        a.add("events", 1);
        a.add("allocs", 7);
        let mut b = Rollup::new();
        b.add("events", 2);
        b.add("spf_full", 3);

        let mut ab = Rollup::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Rollup::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("events"), 3);
        assert_eq!(ab.get("allocs"), 7);
        assert_eq!(ab.get("spf_full"), 3);
    }

    #[test]
    fn iteration_and_display_are_key_ordered() {
        let mut r = Rollup::new();
        r.add("zeta", 1);
        r.add("alpha", 2);
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["alpha", "zeta"]);
        assert_eq!(r.to_string(), "alpha=2 zeta=1");
    }

    #[test]
    fn totals_saturate_instead_of_wrapping() {
        let mut r = Rollup::new();
        r.add("x", u64::MAX - 1);
        r.add("x", 10);
        assert_eq!(r.get("x"), u64::MAX);
    }
}
