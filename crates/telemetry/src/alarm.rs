//! Threshold alarms with hysteresis and hold-down.
//!
//! The controller raises lies when a link's utilization crosses a high
//! watermark and retracts them when it falls below a low watermark.
//! Two stabilizers prevent flapping:
//!
//! * **hysteresis** — distinct raise/clear thresholds (`hi > lo`);
//! * **hold-down** — the value must stay beyond the threshold for a
//!   minimum duration before the alarm edges.

use fib_igp::time::{Dur, Timestamp};

/// Alarm transition events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// The value held above `hi` for the hold-down: alarm is on.
    Raised,
    /// The value held below `lo` for the hold-down: alarm is off.
    Cleared,
}

/// Alarm configuration.
#[derive(Debug, Clone, Copy)]
pub struct Threshold {
    /// Raise threshold.
    pub hi: f64,
    /// Clear threshold (must satisfy `lo <= hi`).
    pub lo: f64,
    /// Time the value must persist beyond a threshold to edge.
    pub hold: Dur,
}

impl Threshold {
    /// Construct, validating `lo <= hi`.
    pub fn new(hi: f64, lo: f64, hold: Dur) -> Threshold {
        assert!(lo <= hi, "clear threshold must not exceed raise threshold");
        Threshold { hi, lo, hold }
    }
}

/// A hysteresis + hold-down alarm over a scalar signal.
#[derive(Debug, Clone)]
pub struct Alarm {
    cfg: Threshold,
    active: bool,
    above_since: Option<Timestamp>,
    below_since: Option<Timestamp>,
}

impl Alarm {
    /// A cleared alarm.
    pub fn new(cfg: Threshold) -> Alarm {
        Alarm {
            cfg,
            active: false,
            above_since: None,
            below_since: None,
        }
    }

    /// `true` while raised.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configuration.
    pub fn threshold(&self) -> Threshold {
        self.cfg
    }

    /// Feed a sample; returns an [`Edge`] when the alarm transitions.
    pub fn observe(&mut self, at: Timestamp, value: f64) -> Option<Edge> {
        if !self.active {
            if value >= self.cfg.hi {
                let since = *self.above_since.get_or_insert(at);
                if at.since(since) >= self.cfg.hold {
                    self.active = true;
                    self.above_since = None;
                    self.below_since = None;
                    return Some(Edge::Raised);
                }
            } else {
                self.above_since = None;
            }
        } else if value <= self.cfg.lo {
            let since = *self.below_since.get_or_insert(at);
            if at.since(since) >= self.cfg.hold {
                self.active = false;
                self.above_since = None;
                self.below_since = None;
                return Some(Edge::Cleared);
            }
        } else {
            self.below_since = None;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    fn alarm(hold_secs: u64) -> Alarm {
        Alarm::new(Threshold::new(0.8, 0.5, Dur::from_secs(hold_secs)))
    }

    #[test]
    fn raises_after_hold_down() {
        let mut a = alarm(2);
        assert_eq!(a.observe(t(0), 0.9), None);
        assert_eq!(a.observe(t(1), 0.9), None);
        assert_eq!(a.observe(t(2), 0.9), Some(Edge::Raised));
        assert!(a.is_active());
    }

    #[test]
    fn zero_hold_raises_immediately() {
        let mut a = alarm(0);
        assert_eq!(a.observe(t(0), 0.85), Some(Edge::Raised));
    }

    #[test]
    fn dip_resets_hold_down() {
        let mut a = alarm(2);
        a.observe(t(0), 0.9);
        a.observe(t(1), 0.7); // dip below hi resets
        a.observe(t(2), 0.9);
        assert_eq!(a.observe(t(3), 0.9), None);
        assert_eq!(a.observe(t(4), 0.9), Some(Edge::Raised));
    }

    #[test]
    fn hysteresis_band_keeps_alarm_on() {
        let mut a = alarm(0);
        a.observe(t(0), 0.9);
        assert!(a.is_active());
        // Between lo and hi: stays raised.
        assert_eq!(a.observe(t(1), 0.6), None);
        assert!(a.is_active());
        assert_eq!(a.observe(t(2), 0.4), Some(Edge::Cleared));
        assert!(!a.is_active());
    }

    #[test]
    fn clear_respects_hold_down() {
        let mut a = alarm(3);
        for s in 0..=3 {
            a.observe(t(s), 1.0);
        }
        assert!(a.is_active());
        assert_eq!(a.observe(t(10), 0.1), None);
        assert_eq!(a.observe(t(12), 0.1), None);
        assert_eq!(a.observe(t(13), 0.1), Some(Edge::Cleared));
    }

    #[test]
    fn no_repeated_edges() {
        let mut a = alarm(0);
        assert_eq!(a.observe(t(0), 0.9), Some(Edge::Raised));
        assert_eq!(a.observe(t(1), 0.95), None);
        assert_eq!(a.observe(t(2), 0.2), Some(Edge::Cleared));
        assert_eq!(a.observe(t(3), 0.2), None);
    }
}
