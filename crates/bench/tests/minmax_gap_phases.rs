//! Guard: every phase of the T3 optimality-gap pipeline terminates
//! promptly on the paper case — the case CI runs on every push.
//!
//! The bound is a hang tripwire, not a benchmark: each phase runs in
//! microseconds-to-milliseconds (release) but the assert allows 5 s so
//! debug builds and loaded CI runners never flake. Fine-grained perf
//! regression tracking lives in `results/BENCH_table_minmax_gap.json`,
//! which the `table_minmax_gap` bin writes on every run.

use fib_te::prelude::*;
use fibbing::demo::{paper_capacities, paper_topology, A, B, BLUE};
use fibbing::prelude::*;
use std::time::{Duration, Instant};

const PHASE_BUDGET: Duration = Duration::from_secs(5);

#[test]
fn paper_case_phases_are_fast() {
    let topo = paper_topology();
    let caps = paper_capacities(100.0);
    let demands = vec![(A, 100.0), (B, 100.0)];
    let mut tm = TrafficMatrix::new();
    for (s, r) in &demands {
        tm.add(*s, BLUE, *r);
    }

    let t0 = Instant::now();
    let even = even_ecmp_max_util(&topo, &tm, &caps);
    let even_t = t0.elapsed();
    eprintln!("even: {even:?} in {even_t:?}");

    let t0 = Instant::now();
    let best = best_ecmp_weights_max_util(&topo, &tm, &caps, 3).map(|(u, _)| u);
    let best_t = t0.elapsed();
    eprintln!("best: {best:?} in {best_t:?}");

    let t0 = Instant::now();
    let theta = min_max_theta(&topo, BLUE, &demands, &caps);
    let theta_t = t0.elapsed();
    eprintln!("theta: {theta:?} in {theta_t:?}");

    let t0 = Instant::now();
    let plan = plan_paths(&topo, BLUE, &demands, &caps, 0.01, 8);
    let plan_t = t0.elapsed();
    eprintln!("plan: ok={} in {plan_t:?}", plan.is_ok());

    assert!(even.is_some() && best.is_some() && theta.is_ok() && plan.is_ok());
    for (name, took) in [
        ("even_ecmp_max_util", even_t),
        ("best_ecmp_weights_max_util", best_t),
        ("min_max_theta", theta_t),
        ("plan_paths", plan_t),
    ] {
        assert!(
            took < PHASE_BUDGET,
            "{name} took {took:?} (budget {PHASE_BUDGET:?}) — the \
             optimality-gap pipeline has regressed toward its old \
             minutes-long behaviour"
        );
    }
}
