//! A tiny shared flag parser for the figure/table binaries.
//!
//! Every bin takes `--flag value` (or `--flag=value`) pairs; the one
//! flag they all share is `--seed N`, replacing the hard-coded seeds
//! the binaries used to carry. Unknown flags are an error so typos
//! fail loudly instead of silently running the default experiment.

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    pairs: Vec<(String, String)>,
    positionals: Vec<String>,
}

impl Cli {
    /// Parse the process arguments, allowing only `known` flag names
    /// (without the `--` prefix). Exits with a usage message on
    /// malformed or unknown flags.
    pub fn from_env(known: &[&str]) -> Cli {
        Cli::from_env_inner(known, &[])
    }

    /// Like [`Cli::from_env`] but also accepting up to
    /// `positional.len()` positional arguments (named only for the
    /// usage message), in order, e.g. `sweep <spec.toml> --jobs 4`.
    pub fn from_env_with_positionals(known: &[&str], positional: &[&str]) -> Cli {
        Cli::from_env_inner(known, positional)
    }

    fn from_env_inner(known: &[&str], positional: &[&str]) -> Cli {
        match Cli::parse_full(std::env::args().skip(1), known, positional.len()) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: {} {}{}{}",
                    std::env::args().next().unwrap_or_default(),
                    positional
                        .iter()
                        .map(|p| format!("<{p}>"))
                        .collect::<Vec<_>>()
                        .join(" "),
                    if positional.is_empty() { "" } else { " " },
                    known
                        .iter()
                        .map(|k| format!("[--{k} <value>]"))
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                std::process::exit(2);
            }
        }
    }

    /// Parse an argument iterator (testable core of [`Cli::from_env`]).
    pub fn parse(args: impl IntoIterator<Item = String>, known: &[&str]) -> Result<Cli, String> {
        Cli::parse_full(args, known, 0)
    }

    /// Parse allowing up to `max_positionals` non-flag arguments
    /// (testable core of [`Cli::from_env_with_positionals`]).
    pub fn parse_full(
        args: impl IntoIterator<Item = String>,
        known: &[&str],
        max_positionals: usize,
    ) -> Result<Cli, String> {
        let mut pairs = Vec::new();
        let mut positionals = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let Some(flag) = arg.strip_prefix("--") else {
                if positionals.len() < max_positionals {
                    positionals.push(arg);
                    continue;
                }
                return Err(format!("unexpected argument `{arg}`"));
            };
            let (name, value) = match flag.split_once('=') {
                Some((n, v)) => (n.to_string(), v.to_string()),
                None => match args.next() {
                    Some(v) => (flag.to_string(), v),
                    None => return Err(format!("flag `--{flag}` needs a value")),
                },
            };
            if !known.contains(&name.as_str()) {
                return Err(format!("unknown flag `--{name}`"));
            }
            if pairs.iter().any(|(n, _)| *n == name) {
                return Err(format!("flag `--{name}` given twice"));
            }
            pairs.push((name, value));
        }
        Ok(Cli { pairs, positionals })
    }

    /// The positional arguments, in the order given.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The raw value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// A `u64` flag (panics with a clear message on a bad value).
    pub fn u64_flag(&self, name: &str) -> Option<u64> {
        self.get(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects an unsigned integer, got `{v}`"))
        })
    }

    /// An `f64` flag (panics with a clear message on a bad value).
    pub fn f64_flag(&self, name: &str) -> Option<f64> {
        self.get(name).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--{name} expects a number, got `{v}`"))
        })
    }

    /// The shared experiment seed: `--seed N`, or `default`.
    pub fn seed(&self, default: u64) -> u64 {
        self.u64_flag("seed").unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_both_flag_shapes() {
        let cli = Cli::parse(args(&["--seed", "9", "--suite=smoke"]), &["seed", "suite"]).unwrap();
        assert_eq!(cli.seed(7), 9);
        assert_eq!(cli.get("suite"), Some("smoke"));
        assert_eq!(cli.get("horizon"), None);
    }

    #[test]
    fn default_seed_applies() {
        let cli = Cli::parse(args(&[]), &["seed"]).unwrap();
        assert_eq!(cli.seed(2016), 2016);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Cli::parse(args(&["--nope", "1"]), &["seed"]).is_err());
        assert!(Cli::parse(args(&["positional"]), &["seed"]).is_err());
        assert!(Cli::parse(args(&["--seed"]), &["seed"]).is_err());
        assert!(Cli::parse(args(&["--seed", "1", "--seed", "2"]), &["seed"]).is_err());
    }

    #[test]
    fn positionals_when_allowed() {
        let cli =
            Cli::parse_full(args(&["sweeps/smoke.toml", "--jobs", "4"]), &["jobs"], 1).unwrap();
        assert_eq!(cli.positionals(), ["sweeps/smoke.toml"]);
        assert_eq!(cli.u64_flag("jobs"), Some(4));
        // A second positional still errors.
        assert!(Cli::parse_full(args(&["a.toml", "b.toml"]), &[], 1).is_err());
        // And `parse` keeps rejecting them entirely.
        assert!(Cli::parse(args(&["a.toml"]), &[]).is_err());
    }

    #[test]
    fn numeric_accessors() {
        let cli = Cli::parse(args(&["--horizon", "12.5"]), &["horizon"]).unwrap();
        assert_eq!(cli.f64_flag("horizon"), Some(12.5));
        assert_eq!(cli.u64_flag("missing"), None);
    }
}
