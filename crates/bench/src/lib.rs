//! Shared helpers for the benchmark/figure-regeneration harness.
//!
//! Every table and figure of the paper has a binary in `src/bin/`
//! (see DESIGN.md's experiment index); they print human-readable
//! tables and drop CSV files under `results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

pub mod cli;

/// The directory where regeneration binaries drop CSV artifacts.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("can create results dir");
    dir.canonicalize().unwrap_or(dir)
}

/// A simple aligned text table with CSV export.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", c, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&self.header, &widths, &mut out);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and save CSV under `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let path = results_dir().join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv()).expect("write results csv");
        println!("[saved {}]\n", path.display());
    }
}

/// Format a f64 compactly.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_exports() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        let txt = t.render();
        assert!(txt.contains("| a"));
        assert!(txt.contains("| 1"));
        assert_eq!(t.to_csv(), "a,bb\n1,2\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(0.5), "0.500");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
