//! T4 — reaction to a flash crowd: how long from surge to relief, and
//! at what control-plane cost (Sec. 2's "too slow for a transient
//! event" argument against weight reconfiguration, quantified).
//!
//! The surge is the paper's t = 15 s batch (30 extra videos at B).
//! Reaction time = first moment the B–R3 detour carries traffic.
//!
//! Run: `cargo run --release -p fib-bench --bin table_reaction`

use fib_bench::{f, Table};
use fib_te::prelude::*;
use fibbing::demo::{self, paper_capacities, paper_topology, DemoConfig, B, BLUE};
use fibbing::prelude::*;

/// Time (s) at which a recorded series first exceeds `level`, after
/// `after_secs`.
fn first_crossing(rec: &Recorder, series: &str, level: f64, after_secs: f64) -> Option<f64> {
    rec.series(series)
        .iter()
        .find(|(t, v)| *t >= after_secs && *v > level)
        .map(|(t, _)| *t)
}

fn controller_run(predictive: bool) -> (Option<f64>, u64, u64) {
    let cfg = DemoConfig {
        predictive,
        ..DemoConfig::default()
    };
    let mut run = demo::build(&cfg);
    run.sim.start();
    run.sim.run_until(Timestamp::from_secs(14));
    let before = run.sim.stats();
    run.sim.run_until(Timestamp::from_secs(33));
    let after = run.sim.stats();
    let t = first_crossing(run.sim.recorder(), "B-R3", 1e4, 14.9).map(|t| t - 15.0);
    (
        t,
        after.ctrl_pkts - before.ctrl_pkts,
        after.ctrl_bytes - before.ctrl_bytes,
    )
}

fn main() {
    println!("== T4: reaction to the t=15s surge (30 extra videos at B) ==\n");
    let mut t = Table::new(&[
        "method",
        "reaction time (s)",
        "ctrl pkts (t in 14..33s)",
        "ctrl bytes",
        "devices reconfigured",
    ]);

    // Fibbing, predictive (server notifications).
    let (t_pred, pkts_p, bytes_p) = controller_run(true);
    t.row(&[
        "Fibbing (notifications)".to_string(),
        t_pred.map(f).unwrap_or_else(|| "-".to_string()),
        pkts_p.to_string(),
        bytes_p.to_string(),
        "0".to_string(),
    ]);

    // Fibbing, SNMP-only (counter polling + EWMA + hysteresis).
    let (t_snmp, pkts_s, bytes_s) = controller_run(false);
    t.row(&[
        "Fibbing (SNMP only)".to_string(),
        t_snmp.map(f).unwrap_or_else(|| "-".to_string()),
        pkts_s.to_string(),
        bytes_s.to_string(),
        "0".to_string(),
    ]);

    // Weight reconfiguration: detection (1 s SNMP poll + 2 s hold) +
    // local search compute + serial per-device configuration (5 s per
    // device, a conservative CLI/agent latency) + flooding/SPF.
    let topo = paper_topology();
    let caps_map = paper_capacities(4.0e6);
    let mut tm = TrafficMatrix::new();
    tm.add(B, BLUE, 31.0 * 125_000.0);
    let started = std::time::Instant::now();
    let res = optimize_weights(&topo, &tm, &caps_map, 4, 8);
    let compute_secs = started.elapsed().as_secs_f64();
    let d = disruption(&topo, &res.topo, Dur::from_secs(5), Dur::from_millis(250));
    let detection = 3.0; // poll interval + hold-down
    let total = detection + compute_secs + d.est_convergence.as_secs_f64();
    t.row(&[
        "IGP weight reconfig".to_string(),
        f(total),
        d.lsas_reoriginated.to_string(),
        "-".to_string(),
        d.devices_reconfigured.to_string(),
    ]);

    t.emit("table4_reaction");
    println!(
        "(weight search: {} candidate evaluations, {} link changes, {} routers rerouted)",
        res.evaluations,
        res.changed_links.len(),
        d.routers_rerouted
    );
    println!("\nReading: the notification-driven controller reacts within ~1s");
    println!("(one optimizer run + one flooded LSA); SNMP-only adds the");
    println!("polling/EWMA/hold-down lag; weight reconfiguration pays serial");
    println!("device configuration and network-wide SPF churn — far beyond");
    println!("flash-crowd timescales, as the paper argues.");
}
