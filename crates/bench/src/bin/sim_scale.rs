//! Scaling sweep of the co-simulation data plane.
//!
//! Runs flash-crowd-plus-failure scenarios at growing size — Waxman
//! graphs from 20 routers / 200 sessions up to the shipped
//! `scenarios/metro_core.toml` (200 routers / 2 000 sessions) — and
//! reports how the incremental recompute machinery held up: events
//! processed per wall-second, reallocation counts, dirty-set path
//! re-resolutions vs the `Σ_realloc flows` a global recompute would
//! have performed (`naive_resolutions`; `resolve_ratio` is the
//! saving), allocator fill/skip counts, and full vs partial SPF runs.
//!
//! Run: `cargo run --release -p fib-bench --bin sim_scale`
//!
//! Flags: `--cases N` (first N sweep cases only — CI's smoke runs 2),
//! `--horizon SECS` (override every case's horizon), `--seed N`
//! (reseed the generated cases; `metro_core` keeps its spec seed, as
//! its fault script names seed-2016 links), `--max-secs S` (skip
//! remaining cases once the budget is spent; skipped cases are listed
//! in the JSON so CI can fail on them), `--gate PATH` (enforce the
//! events/s floors recorded in a previous run's JSON — see below),
//! `--gate-tol F` (tolerance band used when *recording* floors;
//! default 0.25 — CI's tracing-overhead gate records Noop-sink floors
//! at 0.10), `--repeat N` (run every case N times and keep the best
//! throughput — single-shot sub-second cases jitter by 5-10% on a
//! busy machine, best-of-N is what a tight tolerance band needs;
//! counters are deterministic so repeats change no artifact bytes
//! except the wall fields), `--trace off|agg` (per-case tracing sink; `agg` — the
//! default — attributes each case's wall clock by phase into the
//! JSON's `phase_attribution` arrays, `off` runs with no sink at all,
//! the configuration the events/s floors are recorded under), and
//! `--trace-out PATH` (Chrome trace-event export: every case records
//! into one shared-epoch timeline, viewable in Perfetto).
//!
//! Cases run with `SettleMode::Lazy`: settlement only at observation
//! points, the mode the kernel redesign earns its throughput in. Every
//! observable (traces, QoE, counters in the table) is proven identical
//! to `Eager` in `fib-netsim`'s pin tests; only the machinery-counter
//! columns (`reallocs`, `alloc fills`, …) reflect the collapsed
//! settle schedule.
//!
//! Gating: each run records, per case, a `min_events_per_sec` floor —
//! the measured throughput minus a 25% tolerance band, and never below
//! the 60 000 events/s acceptance floor for `metro_core`. `--gate
//! PATH` replays those floors against the current run: a case running
//! slower than its recorded floor (or a gated run that skips
//! `metro_core`, or `metro_core` under the hard floor) exits nonzero.
//! CI's bench-smoke records floors with one full run, copies the JSON
//! aside, and gates a second full run against it, so throughput
//! regressions fail the build run-over-run.
//!
//! Artifacts: the comparison table (counters only — byte-identical
//! across same-build runs, diffed in CI) lands in
//! `results/bench_sim_scale.csv`; the full record including wall
//! times in `results/BENCH_sim_scale.json` so the perf trajectory is
//! tracked run-over-run like `BENCH_table_minmax_gap.json`.

use fib_bench::cli::Cli;
use fib_bench::{f, results_dir, Table};
use fib_igp::spf::shortest_paths;
use fib_igp::types::RouterId;
use fib_scenario::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// One sweep case: a generated metro-style scenario, or the shipped
/// `metro_core` spec for the flagship size.
struct Case {
    name: String,
    spec: ScenarioSpec,
}

/// Counters harvested from one run.
struct Outcome {
    routers: usize,
    links: usize,
    sessions: usize,
    events: u64,
    reallocs: u64,
    paths_resolved: u64,
    paths_skipped: u64,
    alloc_fills: u64,
    alloc_skips: u64,
    spf_full: u64,
    spf_partial: u64,
    max_util: f64,
    unroutable_flow_secs: f64,
    wall_secs: f64,
}

impl Outcome {
    /// What the pre-refactor engine would have resolved: every flow,
    /// at every reallocation.
    fn naive_resolutions(&self) -> u64 {
        self.paths_resolved + self.paths_skipped
    }

    /// Incremental saving (naive / actual).
    fn resolve_ratio(&self) -> f64 {
        if self.paths_resolved == 0 {
            0.0
        } else {
            self.naive_resolutions() as f64 / self.paths_resolved as f64
        }
    }
}

/// Build a metro-style scenario at the given size: Waxman graph, sink
/// at the best-connected router, two flash crowds from spread
/// ingresses, one non-bridge sink uplink failing mid-crowd.
fn generated_case(routers: u32, sessions: u32, seed: u64) -> Result<Case, SpecError> {
    // Edge probability scaled so the expected mean degree stays near
    // 4 across sweep sizes (a metro-ish sparseness with real path
    // diversity — a near-tree graph would leave the controller no
    // detours to lie about).
    let topology = TopologySpec::Waxman {
        n: routers,
        alpha: (13.0 / (routers as f64 - 1.0)).clamp(0.05, 0.9),
        beta: 0.3,
        max_metric: 6,
    };
    // Materialize the graph exactly as the runner will (same seed,
    // same stream) to pick the sink and a safe link to fail.
    let mut rng = StdRng::seed_from_u64(seed);
    let topo = build_topology(&topology, &mut rng);
    let sink = topo
        .routers()
        .max_by_key(|r| (topo.links(*r).len(), r.0))
        .expect("non-empty graph");
    // Fail the sink uplink with the best-connected peer that is not a
    // bridge (removal must leave the graph connected).
    let mut uplinks: Vec<RouterId> = topo.links(sink).iter().map(|l| l.to).collect();
    uplinks.sort_by_key(|p| std::cmp::Reverse(topo.links(*p).len()));
    let fail_peer = uplinks
        .into_iter()
        .find(|peer| {
            let mut cut = topo.clone();
            cut.remove_link(sink, *peer);
            cut.remove_link(*peer, sink);
            let sp = shortest_paths(&cut, sink);
            let connected = cut.routers().all(|r| sp.dist_to(r).is_finite());
            connected
        })
        .unwrap_or_else(|| topo.links(sink)[0].to);
    // Ingresses: the two lowest-id routers at least two hops from the
    // sink (so crowds actually cross the network).
    let sp = shortest_paths(&topo, sink);
    let mut ingresses: Vec<RouterId> = topo
        .routers()
        .filter(|r| *r != sink && sp.dist_to(*r).is_finite() && !topo.has_link(sink, *r))
        .collect();
    ingresses.sort();
    ingresses.truncate(2);
    if ingresses.len() < 2 {
        return Err(SpecError("graph too small for two ingresses".into()));
    }

    let per_wave = sessions / 2;
    // Capacity sized so the crowd saturates shortest paths (forcing
    // the controller to lie) without drowning the ingress degree.
    let capacity = (per_wave as f64 * 125_000.0 / 3.0).max(2.5e6);
    let horizon = 60.0;
    let crowd_secs = 10.0;
    let mean_gap = crowd_secs / per_wave.max(1) as f64;
    let mut events = vec![
        EventSpec {
            at: 2.0,
            kind: EventKind::FlashCrowd {
                src: ingresses[0].0,
                n: per_wave,
                mean_gap_secs: mean_gap,
                rate: 125_000.0,
                video_secs: 300.0,
                dst: 0,
            },
        },
        EventSpec {
            at: 4.0,
            kind: EventKind::FlashCrowd {
                src: ingresses[1].0,
                n: sessions - per_wave,
                mean_gap_secs: mean_gap,
                rate: 125_000.0,
                video_secs: 300.0,
                dst: 0,
            },
        },
    ];
    events.push(EventSpec {
        at: 8.0,
        kind: EventKind::FailLink {
            a: fail_peer.0,
            b: sink.0,
        },
    });
    events.push(EventSpec {
        at: 30.0,
        kind: EventKind::RestoreLink {
            a: fail_peer.0,
            b: sink.0,
        },
    });
    let spec = ScenarioSpec {
        name: format!("scale_{routers}r_{sessions}s"),
        description: format!(
            "generated sweep case: {routers} routers, {sessions} sessions, \
             fail {}-{} mid-crowd",
            fail_peer.0, sink.0
        ),
        horizon_secs: horizon,
        seed,
        // The generated fault script names links of this seed's graph.
        pin_seed: true,
        capacity,
        topology,
        sinks: vec![sink.0],
        controller: Some(ControllerSpec {
            attach: sink.0,
            target_util: 0.6,
            predictive: false,
            ..ControllerSpec::default()
        }),
        workloads: Vec::new(),
        events,
        trace_links: Vec::new(),
        expect: None,
    };
    Ok(Case {
        name: format!("{routers}r/{sessions}s"),
        spec,
    })
}

fn run_case(case: &Case, opts: RunOptions) -> Result<Outcome, SpecError> {
    let wall = Instant::now();
    let mut run = build(&case.spec, opts)?;
    let horizon = run.horizon_secs();
    run.run_until_secs(horizon);
    let stats = run.sim.stats();
    let report = run.finish();
    Ok(Outcome {
        routers: report.routers,
        links: report.links,
        sessions: report.sessions,
        events: stats.events,
        reallocs: stats.reallocs,
        paths_resolved: stats.paths_resolved,
        paths_skipped: stats.paths_skipped,
        alloc_fills: stats.alloc_fills,
        alloc_skips: stats.alloc_skips,
        spf_full: stats.spf_full_runs,
        spf_partial: stats.spf_partial_runs,
        max_util: report.max_util,
        unroutable_flow_secs: report.unroutable_flow_secs,
        wall_secs: wall.elapsed().as_secs_f64(),
    })
}

/// Hard acceptance floor for the flagship case (events per
/// wall-second on `metro_core`), independent of any recorded band.
const METRO_CORE_FLOOR: f64 = 60_000.0;

/// Fraction of measured throughput a later run may lose before the
/// gate trips (machine jitter allowance).
const GATE_TOLERANCE: f64 = 0.25;

/// Extract `(name, min_events_per_sec)` floors from a previous run's
/// `BENCH_sim_scale.json` (the flat format this binary writes; no
/// JSON dependency needed for a file we author ourselves).
fn parse_floors(json: &str) -> Vec<(String, f64)> {
    let mut floors = Vec::new();
    let Some(at) = json.find("\"floors\": [") else {
        return floors;
    };
    let Some(end) = json[at..].find(']') else {
        return floors;
    };
    for obj in json[at..at + end].split('{').skip(1) {
        let name = obj
            .split("\"name\": \"")
            .nth(1)
            .and_then(|r| r.split('"').next());
        let floor = obj
            .split("\"min_events_per_sec\": ")
            .nth(1)
            .and_then(|r| r.split(['}', ','] as [char; 2]).next())
            .and_then(|v| v.trim().parse::<f64>().ok());
        if let (Some(n), Some(fl)) = (name, floor) {
            floors.push((n.to_string(), fl));
        }
    }
    floors
}

/// Per-case Chrome event budget: enough to hold the interesting
/// control-plane activity; kernel-dispatch spans beyond it are counted
/// in `dropped` (the cap cuts the deterministic event sequence, so the
/// kept prefix is still identical across runs).
const TRACE_EVENT_CAP: usize = 200_000;

/// Remove this thread's sink and return its per-phase attribution.
/// Chrome sinks are folded into `master` (the shared-epoch trace file)
/// on the way out.
fn take_phases(master: &mut Option<fib_trace::ChromeSink>) -> Vec<fib_trace::PhaseAttribution> {
    let Some(sink) = fib_trace::take() else {
        return Vec::new();
    };
    match sink.into_any().downcast::<fib_trace::AggSink>() {
        Ok(agg) => agg.attribution(),
        Err(other) => match other.downcast::<fib_trace::ChromeSink>() {
            Ok(chrome) => {
                let phases = chrome.attribution();
                if let Some(m) = master.as_mut() {
                    m.absorb(*chrome);
                }
                phases
            }
            Err(_) => Vec::new(),
        },
    }
}

fn main() {
    let cli = Cli::from_env(&[
        "cases",
        "horizon",
        "seed",
        "max-secs",
        "gate",
        "gate-tol",
        "repeat",
        "trace",
        "trace-out",
    ]);
    let repeat = cli.u64_flag("repeat").unwrap_or(1).max(1);
    let seed = cli.u64_flag("seed").unwrap_or(2016);
    let horizon = cli.f64_flag("horizon");
    let max_secs = cli.f64_flag("max-secs").unwrap_or(f64::INFINITY);
    let gate_tol = cli.f64_flag("gate-tol").unwrap_or(GATE_TOLERANCE);
    let trace_mode = cli.get("trace").unwrap_or("agg");
    if !matches!(trace_mode, "agg" | "off") {
        eprintln!("--trace expects `agg` or `off`, got `{trace_mode}`");
        std::process::exit(2);
    }
    let trace_out = cli.get("trace-out").map(String::from);
    if trace_mode == "off" && trace_out.is_some() {
        eprintln!("--trace off and --trace-out are mutually exclusive");
        std::process::exit(2);
    }
    let trace_epoch = Instant::now();
    let mut master_sink = trace_out
        .as_ref()
        .map(|_| fib_trace::ChromeSink::with_epoch(TRACE_EVENT_CAP, trace_epoch));
    let total = Instant::now();

    let mut cases: Vec<Case> = Vec::new();
    for (routers, sessions) in [(20u32, 200u32), (50, 500), (100, 1000)] {
        match generated_case(routers, sessions, seed) {
            Ok(c) => cases.push(c),
            Err(e) => {
                eprintln!("cannot generate {routers}r/{sessions}s: {e}");
                std::process::exit(1);
            }
        }
    }
    match load_scenario("metro_core") {
        Ok(spec) => cases.push(Case {
            name: "metro_core".into(),
            spec,
        }),
        Err(e) => {
            eprintln!("cannot load metro_core: {e}");
            std::process::exit(1);
        }
    }
    let limit = cli
        .u64_flag("cases")
        .map(|n| n as usize)
        .unwrap_or(cases.len());

    let mut table = Table::new(&[
        "case",
        "rtrs",
        "links",
        "sess",
        "events",
        "reallocs",
        "resolved",
        "skipped",
        "naive",
        "ratio",
        "alloc fills",
        "alloc skips",
        "spf full",
        "spf partial",
        "max util",
    ]);
    let mut json_cases = String::new();
    let mut skipped: Vec<&str> = Vec::new();
    let mut throughput: Vec<(String, f64)> = Vec::new();
    for case in cases.iter().take(limit) {
        if total.elapsed().as_secs_f64() > max_secs {
            skipped.push(&case.name);
            continue;
        }
        // `metro_core`'s fault script is bound to its spec seed; the
        // generated cases take the sweep seed via their spec already.
        // Lazy settlement is the whole point of this bench: it measures
        // the kernel at the schedule perf-sensitive callers opt into.
        let opts = RunOptions {
            seed: None,
            horizon_secs: horizon,
            disable_controller: false,
            settle: SettleMode::Lazy,
            check_loops: false,
        };
        eprintln!("[sim_scale] {} …", case.name);
        // Best-of-`repeat`: every run is deterministic, so repeats
        // agree on every counter (and span count) and differ only in
        // wall clock — keeping the fastest is pure noise reduction.
        let mut best: Option<Outcome> = None;
        let mut phases = Vec::new();
        for _ in 0..repeat {
            if trace_out.is_some() {
                fib_trace::install(Box::new(fib_trace::ChromeSink::with_epoch(
                    TRACE_EVENT_CAP,
                    trace_epoch,
                )));
            } else if trace_mode == "agg" {
                fib_trace::install(Box::new(fib_trace::AggSink::new()));
            }
            let o = match run_case(case, opts) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("[sim_scale] {} failed: {e}", case.name);
                    std::process::exit(1);
                }
            };
            phases = take_phases(&mut master_sink);
            best = Some(match best.take() {
                Some(b) if b.wall_secs <= o.wall_secs => b,
                _ => o,
            });
        }
        let o = best.expect("repeat >= 1");
        eprintln!(
            "[sim_scale] {}: {:.1}s wall, {:.0} events/s, resolve ratio {:.0}x",
            case.name,
            o.wall_secs,
            o.events as f64 / o.wall_secs.max(1e-9),
            o.resolve_ratio(),
        );
        table.row(&[
            case.name.clone(),
            o.routers.to_string(),
            o.links.to_string(),
            o.sessions.to_string(),
            o.events.to_string(),
            o.reallocs.to_string(),
            o.paths_resolved.to_string(),
            o.paths_skipped.to_string(),
            o.naive_resolutions().to_string(),
            f(o.resolve_ratio()),
            o.alloc_fills.to_string(),
            o.alloc_skips.to_string(),
            o.spf_full.to_string(),
            o.spf_partial.to_string(),
            f(o.max_util),
        ]);
        // `spans` counts are deterministic for a fixed seed; `pct` is
        // wall-derived and masked by CI's byte diffs (like wall_secs).
        let pa_json = phases
            .iter()
            .map(|a| {
                format!(
                    "{{\"phase\": \"{}\", \"spans\": {}, \"pct\": {:.3}}}",
                    a.phase, a.spans, a.pct
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            json_cases,
            "{}    {{\"name\": \"{}\", \"routers\": {}, \"links\": {}, \"sessions\": {}, \
             \"events\": {}, \"reallocs\": {}, \"paths_resolved\": {}, \"paths_skipped\": {}, \
             \"naive_resolutions\": {}, \"resolve_ratio\": {:.3}, \"alloc_fills\": {}, \
             \"alloc_skips\": {}, \"spf_full_runs\": {}, \"spf_partial_runs\": {}, \
             \"max_util\": {:.6}, \"unroutable_flow_secs\": {:.6}, \"wall_secs\": {:.6}, \
             \"events_per_wall_secs\": {:.3}, \"phase_attribution\": [{pa_json}]}}",
            if json_cases.is_empty() { "" } else { ",\n" },
            case.name,
            o.routers,
            o.links,
            o.sessions,
            o.events,
            o.reallocs,
            o.paths_resolved,
            o.paths_skipped,
            o.naive_resolutions(),
            o.resolve_ratio(),
            o.alloc_fills,
            o.alloc_skips,
            o.spf_full,
            o.spf_partial,
            o.max_util,
            o.unroutable_flow_secs,
            o.wall_secs,
            o.events as f64 / o.wall_secs.max(1e-9),
        );
        throughput.push((case.name.clone(), o.events as f64 / o.wall_secs.max(1e-9)));
    }
    table.emit("bench_sim_scale");

    let mut json = String::from("{\n  \"bench\": \"sim_scale\",\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    if !skipped.is_empty() {
        let names: Vec<String> = skipped.iter().map(|s| format!("\"{s}\"")).collect();
        let _ = writeln!(json, "  \"skipped\": [{}],", names.join(", "));
    }
    let _ = writeln!(json, "  \"cases\": [\n{json_cases}\n  ],");
    // The run-over-run gate: measured throughput minus the tolerance
    // band, with the hard acceptance floor applied to `metro_core`.
    let _ = writeln!(json, "  \"gate\": {{");
    let _ = writeln!(json, "    \"tolerance\": {gate_tol},");
    let _ = writeln!(json, "    \"metro_core_hard_floor\": {METRO_CORE_FLOOR},");
    let floors_json: Vec<String> = throughput
        .iter()
        .map(|(name, eps)| {
            let mut floor = eps * (1.0 - gate_tol);
            if name == "metro_core" {
                floor = floor.max(METRO_CORE_FLOOR);
            }
            format!("      {{\"name\": \"{name}\", \"min_events_per_sec\": {floor:.3}}}")
        })
        .collect();
    let _ = writeln!(
        json,
        "    \"floors\": [\n{}\n    ]",
        floors_json.join(",\n")
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"total_secs\": {:.6}\n}}",
        total.elapsed().as_secs_f64()
    );
    let path = results_dir().join("BENCH_sim_scale.json");
    std::fs::write(&path, json).expect("write BENCH json");
    println!("[saved {}]", path.display());
    println!(
        "Reading: `resolved` is what the dirty-set engine actually re-resolved;\n\
         `naive` is what the old global recompute would have (every flow, every\n\
         reallocation). The ratio is the incremental saving — the acceptance\n\
         floor is 10x on metro_core. `alloc skips` are reallocations answered\n\
         from the unchanged-input cache; `spf partial` are route-phase-only\n\
         SPF runs (lie churn that never re-ran Dijkstra)."
    );
    if !skipped.is_empty() {
        eprintln!("budget exhausted; skipped: {}", skipped.join(", "));
    }

    if let (Some(out), Some(master)) = (&trace_out, &master_sink) {
        std::fs::write(out, master.to_json()).unwrap_or_else(|e| panic!("--trace-out {out}: {e}"));
        println!(
            "[saved {out}: {} trace events, {} dropped]",
            master.event_count(),
            master.dropped()
        );
    }

    if let Some(gate_path) = cli.get("gate") {
        let prev = std::fs::read_to_string(gate_path)
            .unwrap_or_else(|e| panic!("--gate {gate_path}: {e}"));
        let floors = parse_floors(&prev);
        // Every violated floor is collected (never exit on the first),
        // so one gated run reports the complete damage.
        let mut violations: Vec<String> = Vec::new();
        if !skipped.is_empty() {
            violations.push(format!("skipped cases: {}", skipped.join(", ")));
        }
        for (name, floor) in &floors {
            match throughput.iter().find(|(n, _)| n == name) {
                Some((_, eps)) if eps >= floor => {
                    eprintln!("[gate] {name}: {eps:.0} events/s >= floor {floor:.0}");
                }
                Some((_, eps)) => {
                    violations.push(format!("{name}: {eps:.0} events/s < floor {floor:.0}"));
                }
                // A case recorded in the reference but absent here is
                // only a failure if this run claimed to cover it (not
                // cut short by --cases).
                None if limit >= cases.len() => {
                    violations.push(format!("{name}: case did not run"));
                }
                None => {}
            }
        }
        // The flagship acceptance floor holds even if the reference
        // file predates it (or was tampered down).
        match throughput.iter().find(|(n, _)| n == "metro_core") {
            Some((_, eps)) if *eps >= METRO_CORE_FLOOR => {}
            Some((_, eps)) => {
                violations.push(format!(
                    "metro_core: {eps:.0} events/s < hard floor {METRO_CORE_FLOOR:.0}"
                ));
            }
            None => {
                violations.push("metro_core: did not run under --gate".into());
            }
        }
        if !violations.is_empty() {
            eprintln!("[gate] {} floor violation(s):", violations.len());
            for v in &violations {
                eprintln!("[gate]   FAIL {v}");
            }
            std::process::exit(1);
        }
        eprintln!("[gate] all events/s floors hold");
    }
}
