//! Run a parallel multi-seed sweep grid and aggregate distributions.
//!
//! A sweep grid (`sweeps/*.toml`, see `docs/SWEEP_FORMAT.md`) declares
//! scenarios × seed ranges × parameter overrides; this binary expands
//! it into cells, shards them across a worker pool, and writes:
//!
//! * `results/BENCH_sweep.json` — distributions, per-cell rollups,
//!   failures, and wall-clock timing (the only non-deterministic
//!   keys; CI masks them);
//! * `results/sweep_<name>_cells.csv` — one row per run;
//! * `results/sweep_<name>_dist.csv` — per-group QoE/utilization/
//!   reaction/unroutable distributions with controller-on vs baseline
//!   QoE deltas.
//!
//! Both CSVs are byte-identical at any `--jobs` (ordered collection
//! over deterministic cells — see the executor docs in
//! `fib_scenario::sweep::exec`).
//!
//! Run: `cargo run --release -p fib-bench --bin sweep -- \
//!         sweeps/flashcrowd_grid.toml --jobs 4`
//!
//! Flags: `--jobs N` (worker threads; default: available
//! parallelism), `--horizon SECS` (override every cell's horizon —
//! the strongest layer of the spec < grid < CLI precedence chain),
//! `--baseline-jobs N` (first run the same grid at N workers, verify
//! the merged artifacts are byte-identical, and record the measured
//! speedup in the JSON), `--trace-out PATH` (Chrome trace-event
//! timeline of the sweep's own scheduling: one `"X"` span per cell,
//! laid out in worker-style lanes from each cell's measured start
//! offset and duration — unlike the simulator traces this is a
//! wall-clock *scheduling* visualization and is not deterministic).
//!
//! Exit status: non-zero if any cell failed a spec/`pin_seed` check or
//! panicked, with a one-line `sweep FAILED:` summary naming **every**
//! failed cell with its error — panic *messages* included, so a CI log
//! diagnoses the failure without re-running 200 cells.

use fib_bench::cli::Cli;
use fib_bench::{f, results_dir, Table};
use fib_scenario::prelude::*;
use fib_scenario::sweep::stats::{cells_csv, mask_timing, to_json};
use fib_scenario::sweep::SweepRun;

/// Everything deterministic one run produces, concatenated: the two
/// CSVs plus the JSON with its wall-clock/worker-count keys masked.
/// The `--baseline-jobs` identity check compares *this*, so
/// cross-jobs nondeterminism anywhere in the artifacts — per-cell
/// rollup counters included — fails the run, not just the columns the
/// cells CSV happens to print.
fn deterministic_artifacts(run: &SweepRun, summary: &SweepSummary) -> String {
    format!(
        "{}\n{}\n{}",
        cells_csv(run),
        summary.dist_csv(),
        mask_timing(&to_json(run, summary, None))
    )
}

/// Render the sweep's cell-scheduling timeline as Chrome trace-event
/// JSON: one complete (`"X"`) span per cell, named by its label, with
/// cells packed greedily into non-overlapping lanes (`tid`). Start
/// offsets and durations are wall-clock measurements, so this artifact
/// is a visualization aid, not a pinned byte-comparable one.
fn cell_timeline_json(run: &SweepRun) -> String {
    use std::fmt::Write as _;
    let mut lane_end: Vec<f64> = Vec::new();
    let mut out =
        String::from("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":0},\"traceEvents\":[");
    for (i, o) in run.outcomes.iter().enumerate() {
        let lane = match lane_end.iter().position(|end| *end <= o.start_secs + 1e-12) {
            Some(l) => l,
            None => {
                lane_end.push(0.0);
                lane_end.len() - 1
            }
        };
        lane_end[lane] = o.start_secs + o.wall_secs;
        let status = match &o.result {
            Ok(_) => "ok",
            Err(_) => "failed",
        };
        let _ = write!(
            out,
            "{}\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"seed\":{},\"variant\":\"{}\",\
             \"status\":\"{status}\"}}}}",
            if i > 0 { "," } else { "" },
            o.cell.label(),
            lane + 1,
            (o.start_secs * 1e6) as u64,
            (o.wall_secs * 1e6) as u64,
            o.cell.seed,
            if o.cell.baseline { "base" } else { "on" },
        );
    }
    out.push_str("\n]}\n");
    out
}

fn main() {
    let cli = Cli::from_env_with_positionals(
        &["jobs", "horizon", "baseline-jobs", "trace-out"],
        &["sweep-spec.toml"],
    );
    let Some(arg) = cli.positionals().first() else {
        eprintln!("error: missing sweep spec (a sweeps/*.toml path or bare name)");
        std::process::exit(2);
    };
    let spec = match load_sweep(arg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let jobs = cli
        .u64_flag("jobs")
        .map(|j| j as usize)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);
    let horizon = cli.f64_flag("horizon");
    let cells = spec.expand().len();
    println!(
        "== sweep {}: {} cells over {} grid entries, {jobs} worker(s) ==",
        spec.name,
        cells,
        spec.grid.len()
    );

    // Optional reference run at another worker count: measures the
    // speedup and doubles as an in-process determinism check (the
    // merged artifacts must match byte for byte).
    let baseline = cli.u64_flag("baseline-jobs").map(|j| {
        let j = (j as usize).max(1);
        eprintln!("[sweep] reference run at --jobs {j} …");
        let reference = run_sweep(&spec, j, horizon).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let fingerprint = deterministic_artifacts(&reference, &SweepSummary::from_run(&reference));
        (reference.jobs, reference.wall_secs, fingerprint)
    });

    let run = match run_sweep(&spec, jobs, horizon) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let summary = SweepSummary::from_run(&run);
    let per_cell = cells_csv(&run);

    let mut speedup_note = String::new();
    if let Some((bjobs, bwall, bfingerprint)) = &baseline {
        if *bfingerprint != deterministic_artifacts(&run, &summary) {
            eprintln!(
                "sweep FAILED: --jobs {jobs} and --jobs {bjobs} produced different \
                 artifacts — the determinism guarantee is broken"
            );
            std::process::exit(1);
        }
        speedup_note = format!(
            " · speedup vs {bjobs} job(s): {:.2}x ({:.2}s -> {:.2}s)",
            bwall / run.wall_secs.max(1e-9),
            bwall,
            run.wall_secs
        );
    }

    let json = to_json(&run, &summary, baseline.as_ref().map(|(j, w, _)| (*j, *w)));
    let json_path = results_dir().join("BENCH_sweep.json");
    std::fs::write(&json_path, json).expect("write BENCH json");
    let cells_path = results_dir().join(format!("sweep_{}_cells.csv", spec.name));
    std::fs::write(&cells_path, &per_cell).expect("write cells csv");
    let dist_path = results_dir().join(format!("sweep_{}_dist.csv", spec.name));
    std::fs::write(&dist_path, summary.dist_csv()).expect("write dist csv");
    if let Some(out) = cli.get("trace-out") {
        std::fs::write(out, cell_timeline_json(&run))
            .unwrap_or_else(|e| panic!("--trace-out {out}: {e}"));
        println!("[saved {out}: {} cell spans]", run.outcomes.len());
    }

    let mut table = Table::new(&[
        "group",
        "cells",
        "sess",
        "QoE p5",
        "QoE p50",
        "QoE p95",
        "dQoE p50",
        "util p95",
        "unroutable p95",
        "react p95",
        "stalls",
    ]);
    let dash = || "-".to_string();
    for g in &summary.groups {
        table.row(&[
            g.label.clone(),
            format!(
                "{}{}",
                g.cells,
                if g.failed > 0 {
                    format!(" ({} failed)", g.failed)
                } else {
                    String::new()
                }
            ),
            g.sessions.to_string(),
            g.qoe.map(|d| f(d.p5)).unwrap_or_else(dash),
            g.qoe.map(|d| f(d.p50)).unwrap_or_else(dash),
            g.qoe.map(|d| f(d.p95)).unwrap_or_else(dash),
            g.qoe_delta.map(|d| f(d.p50)).unwrap_or_else(dash),
            g.max_util.map(|d| f(d.p95)).unwrap_or_else(dash),
            g.unroutable.map(|d| f(d.p95)).unwrap_or_else(dash),
            g.reaction.map(|d| f(d.p95)).unwrap_or_else(dash),
            g.stalls.to_string(),
        ]);
    }
    table.emit(&format!("sweep_{}", spec.name));
    println!(
        "[sweep] {} cells in {:.2}s at --jobs {} ({:.1} cells/s){speedup_note}",
        summary.cells,
        run.wall_secs,
        run.jobs,
        summary.cells as f64 / run.wall_secs.max(1e-9),
    );
    println!(
        "[saved {} + {} + {}]",
        json_path.display(),
        cells_path.display(),
        dist_path.display()
    );
    println!(
        "Reading: each group row is one grid configuration aggregated across\n\
         its seeds. `dQoE p50` is the median paired controller-on minus\n\
         controller-off QoE delta — positive means Fibbing helped on the\n\
         median seed, and the p5..p95 spread in the CSVs shows how reliably."
    );

    if summary.failed > 0 {
        eprintln!("{}", failure_summary(summary.cells, &summary.failures));
        std::process::exit(1);
    }
}

/// The one-line exit summary naming every failed cell *with its
/// error* — for panicking cells that is the caught panic message, not
/// just the cell id, so CI logs are diagnosable without a re-run.
fn failure_summary(cells: usize, failures: &[(usize, String, String)]) -> String {
    let list: Vec<String> = failures
        .iter()
        .map(|(idx, label, error)| format!("cell {idx} {label} ({error})"))
        .collect();
    format!(
        "sweep FAILED: {}/{cells} cells failed: {}",
        failures.len(),
        list.join("; ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_summary_carries_every_panic_message() {
        let failures = vec![
            (
                1,
                "grid_a/s7".to_string(),
                "panic: index out of bounds: the len is 3".to_string(),
            ),
            (
                3,
                "grid_b/s9".to_string(),
                "spec error: bad link".to_string(),
            ),
        ];
        let line = failure_summary(4, &failures);
        assert!(line.starts_with("sweep FAILED: 2/4 cells failed: "));
        assert!(
            line.contains("cell 1 grid_a/s7 (panic: index out of bounds: the len is 3)"),
            "panic message must survive into the summary: {line}"
        );
        assert!(line.contains("cell 3 grid_b/s9 (spec error: bad link)"));
    }
}
