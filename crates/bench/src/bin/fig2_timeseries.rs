//! Regenerates Fig. 2: per-link throughput over time during the flash
//! crowd, with the controller enabled and disabled.
//!
//! Emits `results/fig2_fibbing.csv` and `results/fig2_baseline.csv`
//! in long format (`series,time,value`) plus phase summaries.
//!
//! Run: `cargo run --release -p fib-bench --bin fig2_timeseries`
//!
//! The horizon defaults to the paper's 55 simulated seconds; pass
//! `--horizon 20` (or set `FIB_FIG2_SECS=20`) for a reduced run — CI
//! uses this as a deterministic end-to-end smoke test of the whole
//! pipeline.

use fib_bench::cli::Cli;
use fib_bench::{f, results_dir, Table};
use fibbing::demo::{self, DemoConfig};
use fibbing::prelude::summarize;

/// Simulated horizon in seconds (`--horizon`, then `FIB_FIG2_SECS`,
/// default 55).
fn horizon_secs() -> u64 {
    Cli::from_env(&["horizon"])
        .u64_flag("horizon")
        .or_else(|| {
            std::env::var("FIB_FIG2_SECS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(55)
}

fn run(controller: bool, tag: &str) {
    let cfg = DemoConfig {
        controller,
        ..DemoConfig::default()
    };
    let secs = horizon_secs();
    let run = demo::run(&cfg, secs);
    let rec = run.sim.recorder();

    let path = results_dir().join(format!("fig2_{tag}.csv"));
    std::fs::write(&path, rec.to_csv()).expect("write fig2 csv");
    println!("[saved {}]", path.display());

    println!(
        "\ncontroller {}:",
        if controller { "ENABLED" } else { "DISABLED" }
    );
    print!(
        "{}",
        rec.ascii_chart(&["A-R1", "B-R2", "B-R3"], 72, secs as f64, cfg.capacity)
    );

    let mut t = Table::new(&[
        "phase",
        "A-R1 (B/s)",
        "B-R2 (B/s)",
        "B-R3 (B/s)",
        "max util",
    ]);
    let phases = [
        (5.0, 14.0, "1 flow   (t in 5..14s)"),
        (25.0, 34.0, "31 flows (t in 25..34s)"),
        (45.0, 54.0, "62 flows (t in 45..54s)"),
    ];
    for (from, to, label) in phases.into_iter().filter(|(_, to, _)| *to <= secs as f64) {
        let a_r1 = rec.mean_over("A-R1", from, to).unwrap_or(0.0);
        let b_r2 = rec.mean_over("B-R2", from, to).unwrap_or(0.0);
        let b_r3 = rec.mean_over("B-R3", from, to).unwrap_or(0.0);
        let max = [a_r1, b_r2, b_r3].into_iter().fold(0.0f64, f64::max) / cfg.capacity;
        t.row(&[label.to_string(), f(a_r1), f(b_r2), f(b_r3), f(max)]);
    }
    t.emit(&format!("fig2_{tag}_phases"));

    let reports: Vec<_> = run.qoe.lock().values().cloned().collect();
    let s = summarize(&reports);
    println!(
        "QoE: {} sessions, {} stalls, {:.1}s stalled, mean score {:.2}",
        s.sessions, s.stalls, s.stall_secs, s.mean_score
    );
}

fn main() {
    println!("== Fig. 2: throughput over A-R1 / B-R2 / B-R3 ==");
    println!("(1 flow at t=0, +30 at t=15, +31 from the second source at t=35)");
    run(true, "fibbing");
    run(false, "baseline");
    println!("\nShape to compare against the paper: as load increases, Fibbing");
    println!("activates B-R3 (t=15) then A-R1 with a 1/3-2/3 split (t=35); the");
    println!("maximum link load stays well below capacity while the baseline");
    println!("saturates B-R2.");
}
