//! T3 — optimality: max link utilization of even ECMP, the best
//! possible even-ECMP weight setting, Fibbing's rounded plan, and the
//! fractional optimum θ* ("Fibbing can implement the optimal solution
//! to the min-max link utilization problem").
//!
//! Run: `cargo run --release -p fib-bench --bin table_minmax_gap`
//! (add `--seed N` to redraw the random topologies; default 2016)

use fib_bench::cli::Cli;
use fib_bench::{f, Table};
use fib_te::prelude::*;
use fibbing::demo::{paper_capacities, paper_topology, A, B, BLUE};
use fibbing::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

struct Case {
    name: String,
    topo: Topology,
    prefix: Prefix,
    demands: Vec<(RouterId, f64)>,
    caps: BTreeMap<(RouterId, RouterId), f64>,
    /// Weight bound for the exhaustive even-ECMP search (0 = skip).
    exhaustive_w: u32,
}

/// Largest weight bound whose search space stays tractable.
fn exhaustive_bound(sym_links: usize) -> u32 {
    for w in (2..=3u32).rev() {
        if (w as u64)
            .checked_pow(sym_links as u32)
            .map(|c| c <= 100_000)
            == Some(true)
        {
            return w;
        }
    }
    0
}

fn fibbing_util(case: &Case) -> Option<f64> {
    // Plan at an intentionally infeasible budget so the optimizer
    // falls back to θ*; then realize with lies and measure the loads
    // the rounded slot counts actually produce.
    let plan = plan_paths(&case.topo, case.prefix, &case.demands, &case.caps, 0.01, 8).ok()?;
    let mut alloc = LieAllocator::new();
    let aug = augment(&case.topo, &plan.dag, &mut alloc).ok()?;
    let lies = reduce(&case.topo, &plan.dag, &aug.lies);
    let augmented = apply_all(&case.topo, &lies);
    let demands: Vec<Demand> = case
        .demands
        .iter()
        .map(|(src, rate)| Demand {
            src: *src,
            prefix: case.prefix,
            rate: *rate,
        })
        .collect();
    let loads = spread(&augmented, &demands).ok()?;
    Some(max_utilization(&loads, &case.caps))
}

fn main() {
    let seed = Cli::from_env(&["seed"]).seed(2016);
    println!("== T3: min-max utilization gap across routing schemes ==\n");
    let mut cases = Vec::new();

    // The paper's topology and demand.
    cases.push(Case {
        name: "paper (Fig. 1)".to_string(),
        topo: paper_topology(),
        prefix: BLUE,
        demands: vec![(A, 100.0), (B, 100.0)],
        caps: paper_capacities(100.0),
        exhaustive_w: 3, // 8 symmetric links → 3^8 = 6561, fine
    });

    // Random connected topologies with a flash crowd from two sources.
    // The sink must have degree >= 3 and the demand stays below the
    // sink cut, so the interesting part is *spreading*, not a trivial
    // single-cut bound every scheme hits alike.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut i = 0;
    while i < 4 {
        let mut topo = fib_igp::builders::random_connected(&mut rng, 8, 5, 3);
        let routers: Vec<RouterId> = topo.routers().collect();
        let Some(sink) = routers.iter().copied().find(|r| topo.links(*r).len() >= 3) else {
            continue;
        };
        let prefix = Prefix::net24(1);
        topo.announce_prefix(sink, prefix, Metric::ZERO).unwrap();
        let mut sources = Vec::new();
        while sources.len() < 2 {
            let s = routers[rng.gen_range(0..routers.len())];
            if s != sink && !sources.contains(&s) && !topo.has_link(s, sink) {
                sources.push(s);
            }
        }
        let caps: BTreeMap<(RouterId, RouterId), f64> =
            topo.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        let sym_links = topo.all_links().filter(|(a, b, _)| a < b).count();
        cases.push(Case {
            name: format!("random-{i} (n=8, seed {seed})"),
            topo,
            prefix,
            demands: sources.into_iter().map(|s| (s, 80.0)).collect(),
            caps,
            exhaustive_w: exhaustive_bound(sym_links),
        });
        i += 1;
    }

    let mut t = Table::new(&[
        "topology",
        "even ECMP",
        "best even-ECMP weights",
        "Fibbing (rounded)",
        "optimum θ*",
        "Fibbing gap %",
    ]);
    for case in &cases {
        let mut tm = TrafficMatrix::new();
        for (s, r) in &case.demands {
            tm.add(*s, case.prefix, *r);
        }
        let even = even_ecmp_max_util(&case.topo, &tm, &case.caps);
        let best = if case.exhaustive_w >= 2 {
            best_ecmp_weights_max_util(&case.topo, &tm, &case.caps, case.exhaustive_w)
                .map(|(u, _)| u)
        } else {
            None
        };
        let fib = fibbing_util(case);
        let theta = min_max_theta(&case.topo, case.prefix, &case.demands, &case.caps).ok();
        let gap = match (fib, theta) {
            (Some(fv), Some(tv)) if tv > 0.0 => Some(100.0 * (fv - tv) / tv),
            _ => None,
        };
        let cell = |v: Option<f64>| v.map(f).unwrap_or_else(|| "-".to_string());
        t.row(&[
            case.name.clone(),
            cell(even),
            cell(best),
            cell(fib),
            cell(theta),
            cell(gap),
        ]);
    }
    t.emit("table3_minmax_gap");
    println!("Reading: even ECMP on the deployed weights hotspots badly; even");
    println!("the *best possible* ECMP weights (NP-hard to find) are limited");
    println!("to even splits. Fibbing's rounded plans sit within a few percent");
    println!("of the fractional optimum θ*, matching the paper's claim.");
}
