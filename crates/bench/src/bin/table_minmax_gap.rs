//! T3 — optimality: max link utilization of even ECMP, the best
//! possible even-ECMP weight setting, Fibbing's rounded plan, and the
//! fractional optimum θ* ("Fibbing can implement the optimal solution
//! to the min-max link utilization problem").
//!
//! Run: `cargo run --release -p fib-bench --bin table_minmax_gap`
//!
//! Flags: `--seed N` redraws the random topologies (default 2016),
//! `--cases N` sets how many random cases follow the paper case
//! (default 4), `--max-secs S` stops starting new cases once the
//! elapsed wall time exceeds `S` (skipped cases are recorded, the
//! table stays well-formed). Besides the table CSV, every run writes
//! `results/BENCH_table_minmax_gap.json` with per-case, per-phase wall
//! times so the perf trajectory of the optimizer hot paths is tracked
//! run over run.

use fib_bench::cli::Cli;
use fib_bench::{f, results_dir, Table};
use fib_te::prelude::*;
use fibbing::demo::{paper_capacities, paper_topology, A, B, BLUE};
use fibbing::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

struct Case {
    name: String,
    topo: Topology,
    prefix: Prefix,
    demands: Vec<(RouterId, f64)>,
    caps: BTreeMap<(RouterId, RouterId), f64>,
    /// Weight bound for the best-even-ECMP search (0 = skip).
    exhaustive_w: u32,
}

/// Largest weight bound whose search space stays tractable.
fn exhaustive_bound(sym_links: usize) -> u32 {
    for w in (2..=3u32).rev() {
        if (w as u64)
            .checked_pow(sym_links as u32)
            .map(|c| c <= 100_000)
            == Some(true)
        {
            return w;
        }
    }
    0
}

fn fibbing_util(case: &Case) -> Option<f64> {
    // Plan at an intentionally infeasible budget so the optimizer
    // falls back to θ*; then realize with lies and measure the loads
    // the rounded slot counts actually produce.
    let plan = plan_paths(&case.topo, case.prefix, &case.demands, &case.caps, 0.01, 8).ok()?;
    let mut alloc = LieAllocator::new();
    let aug = augment(&case.topo, &plan.dag, &mut alloc).ok()?;
    let lies = reduce(&case.topo, &plan.dag, &aug.lies);
    let augmented = apply_all(&case.topo, &lies);
    let demands: Vec<Demand> = case
        .demands
        .iter()
        .map(|(src, rate)| Demand {
            src: *src,
            prefix: case.prefix,
            rate: *rate,
        })
        .collect();
    let loads = spread(&augmented, &demands).ok()?;
    Some(max_utilization(&loads, &case.caps))
}

/// One case's measurements: values for the table, wall times for the
/// JSON perf record.
#[derive(Default)]
struct Measured {
    even: Option<f64>,
    best: Option<f64>,
    fib: Option<f64>,
    theta: Option<f64>,
    gap: Option<f64>,
    secs_even: f64,
    secs_best: f64,
    secs_fib: f64,
    secs_theta: f64,
    skipped: bool,
}

fn measure(case: &Case) -> Measured {
    let mut m = Measured::default();
    let mut tm = TrafficMatrix::new();
    for (s, r) in &case.demands {
        tm.add(*s, case.prefix, *r);
    }
    let t0 = Instant::now();
    m.even = even_ecmp_max_util(&case.topo, &tm, &case.caps);
    m.secs_even = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    m.best = if case.exhaustive_w >= 2 {
        best_ecmp_weights_max_util(&case.topo, &tm, &case.caps, case.exhaustive_w).map(|(u, _)| u)
    } else {
        None
    };
    m.secs_best = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    m.fib = fibbing_util(case);
    m.secs_fib = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    m.theta = min_max_theta(&case.topo, case.prefix, &case.demands, &case.caps).ok();
    m.secs_theta = t0.elapsed().as_secs_f64();
    m.gap = match (m.fib, m.theta) {
        (Some(fv), Some(tv)) if tv > 0.0 => Some(100.0 * (fv - tv) / tv),
        _ => None,
    };
    m
}

fn json_num(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.6}"),
        _ => "null".to_string(),
    }
}

fn main() {
    let cli = Cli::from_env(&["seed", "cases", "max-secs"]);
    let seed = cli.seed(2016);
    let n_cases = cli.u64_flag("cases").unwrap_or(4) as usize;
    let max_secs = cli.f64_flag("max-secs").unwrap_or(f64::INFINITY);
    let started = Instant::now();

    println!("== T3: min-max utilization gap across routing schemes ==\n");
    let mut cases = Vec::new();

    // The paper's topology and demand.
    cases.push(Case {
        name: "paper (Fig. 1)".to_string(),
        topo: paper_topology(),
        prefix: BLUE,
        demands: vec![(A, 100.0), (B, 100.0)],
        caps: paper_capacities(100.0),
        exhaustive_w: 3, // 8 symmetric links → 3^8 = 6561, fine
    });

    // Random connected topologies with a flash crowd from two sources.
    // The sink must have degree >= 3 and the demand stays below the
    // sink cut, so the interesting part is *spreading*, not a trivial
    // single-cut bound every scheme hits alike.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut i = 0;
    while i < n_cases {
        let mut topo = fib_igp::builders::random_connected(&mut rng, 8, 5, 3);
        let routers: Vec<RouterId> = topo.routers().collect();
        let Some(sink) = routers.iter().copied().find(|r| topo.links(*r).len() >= 3) else {
            continue;
        };
        let prefix = Prefix::net24(1);
        topo.announce_prefix(sink, prefix, Metric::ZERO).unwrap();
        // Sources must not neighbor the sink (or the case degenerates
        // to a single-cut bound). Some draws leave fewer than two such
        // routers — seed 2016's very first draw has exactly one, which
        // made the old rejection loop here spin forever; redraw the
        // topology instead.
        let eligible = routers
            .iter()
            .filter(|r| **r != sink && !topo.has_link(**r, sink))
            .count();
        if eligible < 2 {
            continue;
        }
        let mut sources = Vec::new();
        while sources.len() < 2 {
            let s = routers[rng.gen_range(0..routers.len())];
            if s != sink && !sources.contains(&s) && !topo.has_link(s, sink) {
                sources.push(s);
            }
        }
        let caps: BTreeMap<(RouterId, RouterId), f64> =
            topo.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        let sym_links = topo.all_links().filter(|(a, b, _)| a < b).count();
        cases.push(Case {
            name: format!("random-{i} (n=8, seed {seed})"),
            topo,
            prefix,
            demands: sources.into_iter().map(|s| (s, 80.0)).collect(),
            caps,
            exhaustive_w: exhaustive_bound(sym_links),
        });
        i += 1;
    }

    let mut t = Table::new(&[
        "topology",
        "even ECMP",
        "best even-ECMP weights",
        "Fibbing (rounded)",
        "optimum θ*",
        "Fibbing gap %",
    ]);
    let cell = |v: Option<f64>| v.map(f).unwrap_or_else(|| "-".to_string());
    let mut measured = Vec::new();
    for case in &cases {
        let m = if started.elapsed().as_secs_f64() > max_secs {
            eprintln!("[{}: skipped, --max-secs {max_secs} exceeded]", case.name);
            Measured {
                skipped: true,
                ..Measured::default()
            }
        } else {
            let m = measure(case);
            eprintln!(
                "[{}: even {:.3}s, best {:.3}s, fibbing {:.3}s, theta {:.3}s]",
                case.name, m.secs_even, m.secs_best, m.secs_fib, m.secs_theta
            );
            m
        };
        if m.skipped {
            t.row(&[
                case.name.clone(),
                "skipped".to_string(),
                "skipped".to_string(),
                "skipped".to_string(),
                "skipped".to_string(),
                "-".to_string(),
            ]);
        } else {
            t.row(&[
                case.name.clone(),
                cell(m.even),
                cell(m.best),
                cell(m.fib),
                cell(m.theta),
                cell(m.gap),
            ]);
        }
        measured.push(m);
    }
    t.emit("table3_minmax_gap");
    println!("Reading: even ECMP on the deployed weights hotspots badly; even");
    println!("the *best possible* ECMP weights (NP-hard to find) are limited");
    println!("to even splits. Fibbing's rounded plans sit within a few percent");
    println!("of the fractional optimum θ*, matching the paper's claim.");

    // Machine-readable perf record: values + wall time per phase per
    // case. Timing keys all end in `_secs` so a determinism diff can
    // strip them with one filter.
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"table_minmax_gap\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"cases\": [");
    for (i, (case, m)) in cases.iter().zip(&measured).enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        if m.skipped {
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"skipped\": true}}{comma}",
                case.name
            );
            continue;
        }
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"even\": {}, \"best\": {}, \"fibbing\": {}, \
             \"theta_star\": {}, \"gap_pct\": {}, \"even_secs\": {:.6}, \
             \"best_secs\": {:.6}, \"fibbing_secs\": {:.6}, \"theta_secs\": {:.6}}}{comma}",
            case.name,
            json_num(m.even),
            json_num(m.best),
            json_num(m.fib),
            json_num(m.theta),
            json_num(m.gap),
            m.secs_even,
            m.secs_best,
            m.secs_fib,
            m.secs_theta,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"total_secs\": {:.6}",
        started.elapsed().as_secs_f64()
    );
    json.push_str("}\n");
    let path = results_dir().join("BENCH_table_minmax_gap.json");
    std::fs::write(&path, json).expect("write bench json");
    println!("[saved {}]", path.display());
}
