//! QoE table — "the video playbacks are smooth when the Fibbing
//! controller is in use and stutter when disabled" (Sec. 3),
//! quantified per session.
//!
//! Run: `cargo run --release -p fib-bench --bin table_qoe`

use fib_bench::{f, Table};
use fibbing::demo::{self, DemoConfig};
use fibbing::prelude::*;

fn run(controller: bool) -> (QoeSummary, usize) {
    let cfg = DemoConfig {
        controller,
        ..DemoConfig::default()
    };
    let run = demo::run(&cfg, 55);
    let reports: Vec<QoeReport> = run.qoe.lock().values().cloned().collect();
    let stalled = reports.iter().filter(|r| r.stalls > 0).count();
    (summarize(&reports), stalled)
}

fn main() {
    println!("== QoE: the demo's observable, per session ==\n");
    let mut t = Table::new(&[
        "run",
        "sessions",
        "sessions w/ stalls",
        "total stalls",
        "stalled seconds",
        "mean startup (s)",
        "mean score (1-5)",
    ]);
    for (label, controller) in [("Fibbing enabled", true), ("Fibbing disabled", false)] {
        let (s, stalled) = run(controller);
        t.row(&[
            label.to_string(),
            s.sessions.to_string(),
            stalled.to_string(),
            s.stalls.to_string(),
            f(s.stall_secs),
            f(s.mean_startup),
            f(s.mean_score),
        ]);
    }
    t.emit("table_qoe");
    println!("Reading: with the controller every one of the 62 videos plays");
    println!("without a single stall; without it the flash crowd starves most");
    println!("sessions — the paper's smooth-vs-stutter observation.");
}
