//! Run a named suite of declarative scenarios and compare them.
//!
//! The scenario engine (`fib-scenario`) composes topology × workload
//! × fault script from `.toml` specs under `scenarios/`; this binary
//! runs a suite, prints a comparison table, and writes per-scenario
//! CSVs (`scenario_<name>.csv` summary + `scenario_<name>_trace.csv`
//! full trace) under `results/`.
//!
//! Run: `cargo run --release -p fib-bench --bin scenario_suite -- \
//!         --suite all --seed 7`
//!
//! Besides the static suites, `--suite found` runs the adversarial
//! regression corpus under `scenarios/found/` — files archived by the
//! `adversary` fuzzer, discovered dynamically so new finds need no
//! code change. Any scenario carrying an `[expect]` stanza (every
//! archived find does) has its bounds enforced after the run; a
//! violated expectation fails the suite like a panic would.
//!
//! Flags: `--suite <all|smoke|scale|found>` (default `all`),
//! `--scenario <name>`
//! (run a single spec instead), `--seed N` (override every spec's
//! seed), `--horizon SECS` (override every spec's horizon),
//! `--trace-out PATH` (Chrome trace-event export of the whole run —
//! kernel dispatch, SPF, fluid settlement, controller optimization,
//! and the lie-lifecycle audit instants — one shared timeline across
//! the suite's scenarios, each wrapped in a `scenario.run` span; open
//! in Perfetto or `chrome://tracing`, see `docs/OBSERVABILITY.md`).
//!
//! When `paper_demo` runs at a horizon covering both waves, the binary
//! additionally asserts the paper's pinned control-plane milestones —
//! the t=15 single-lie plan (B splits evenly over R2 and R3) and the
//! t=35 two-lie plan (A gets three ECMP slots, two via R1) — and
//! exits nonzero if the reproduction drifts.

use fib_bench::cli::Cli;
use fib_bench::{f, results_dir, Table};
use fib_scenario::prelude::*;
use fibbing::demo::{A, B, BLUE, R1, R2, R3};
use fibbing::prelude::RouterId;

/// Sorted next-hop routers toward the blue prefix.
fn hops(run: &mut ScenarioRun, router: RouterId) -> Vec<RouterId> {
    let mut v: Vec<RouterId> = run
        .sim
        .ctx()
        .fib_nexthops(router, BLUE)
        .iter()
        .map(|h| h.router)
        .collect();
    v.sort();
    v
}

/// Drive `paper_demo` through both waves, asserting the pinned plans.
fn check_paper_milestones(run: &mut ScenarioRun) -> Result<(), String> {
    run.run_until_secs(25.0);
    let b = hops(run, B);
    if !(b.contains(&R2) && b.contains(&R3)) {
        return Err(format!("t=25: B must spread over R2 and R3, got {b:?}"));
    }
    if hops(run, A) != vec![B] {
        return Err("t=25: A must still forward only via B".into());
    }
    run.run_until_secs(45.0);
    if hops(run, B) != vec![R2, R3] {
        return Err(format!(
            "t=45: B's settled single-lie plan must be [R2, R3], got {:?}",
            hops(run, B)
        ));
    }
    let a = hops(run, A);
    let via_r1 = a.iter().filter(|r| **r == R1).count();
    if a.len() != 3 || via_r1 != 2 || !a.contains(&B) {
        return Err(format!(
            "t=45: A's two-lie plan must be 3 slots, 2 via R1, 1 via B; got {a:?}"
        ));
    }
    println!("[paper_demo] pinned t=15 single-lie and t=35 two-lie plans reproduced");
    Ok(())
}

/// Extract a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-suite Chrome event budget (the cap cuts the deterministic
/// event sequence, so the kept prefix is identical across runs; the
/// overflow is reported in the file's `dropped` count).
const TRACE_EVENT_CAP: usize = 400_000;

fn main() {
    let cli = Cli::from_env(&["suite", "scenario", "seed", "horizon", "trace-out"]);
    let trace_out = cli.get("trace-out").map(String::from);
    let trace_epoch = std::time::Instant::now();
    let mut master_sink = trace_out
        .as_ref()
        .map(|_| fib_trace::ChromeSink::with_epoch(TRACE_EVENT_CAP, trace_epoch));
    let opts = RunOptions {
        seed: cli.u64_flag("seed"),
        horizon_secs: cli.f64_flag("horizon"),
        ..RunOptions::default()
    };

    let (names, suite_horizon, from_found): (Vec<String>, Option<f64>, bool) =
        match cli.get("scenario") {
            Some(name) => {
                let name = ALL_SCENARIOS
                    .iter()
                    .copied()
                    .find(|n| *n == name)
                    .unwrap_or_else(|| {
                        eprintln!(
                            "unknown scenario `{name}` (have: {})",
                            ALL_SCENARIOS.join(", ")
                        );
                        std::process::exit(2);
                    });
                (vec![name.to_string()], None, false)
            }
            None => {
                let suite_name = cli.get("suite").unwrap_or("all");
                if suite_name == "found" {
                    let names = found_scenarios();
                    println!(
                        "== suite found: adversarial regression corpus \
                         ({} find(s) under scenarios/found/) ==\n",
                        names.len()
                    );
                    (names, None, true)
                } else {
                    let suite = find_suite(suite_name).unwrap_or_else(|| {
                        let mut have: Vec<&str> = SUITES.iter().map(|s| s.name).collect();
                        have.push("found");
                        eprintln!("unknown suite `{suite_name}` (have: {})", have.join(", "));
                        std::process::exit(2);
                    });
                    println!("== suite {}: {} ==\n", suite.name, suite.description);
                    let names = suite.scenarios.iter().map(|s| s.to_string()).collect();
                    (names, suite.horizon_secs, false)
                }
            }
        };
    let opts = RunOptions {
        horizon_secs: opts.horizon_secs.or(suite_horizon),
        ..opts
    };

    let mut table = Table::new(&[
        "scenario",
        "rtrs",
        "links",
        "sess",
        "max util",
        "mean util",
        "peak lies",
        "react (s)",
        "unroutable (s)",
        "stalls",
        "QoE score",
    ]);
    let mut failures: Vec<(String, String)> = Vec::new();
    for name in names {
        let loaded = if from_found {
            load_found(&name)
        } else {
            load_scenario(&name)
        };
        let spec = match loaded {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[{name}] spec error: {e}");
                failures.push((name.to_string(), format!("spec error: {e}")));
                continue;
            }
        };
        println!("[{name}] {}", spec.description);
        // One diverging scenario (a panic deep in the simulator, a
        // pin_seed rejection) must not abort the suite mid-table: run
        // it to completion under a panic guard and keep going, so the
        // exit summary names every failure in one readable line.
        if master_sink.is_some() {
            fib_trace::install(Box::new(fib_trace::ChromeSink::with_epoch(
                TRACE_EVENT_CAP,
                trace_epoch,
            )));
        }
        let guarded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<_, (String, String)> {
                let _span = fib_trace::span(fib_trace::Phase::ScenarioRun);
                let mut run = build(&spec, opts)
                    .map_err(|e| (name.to_string(), format!("build error: {e}")))?;
                let mut milestone_failure = None;
                // The pinned-plan gate, whenever the run covers both
                // waves.
                if name == "paper_demo" && run.horizon_secs() >= 45.0 {
                    if let Err(msg) = check_paper_milestones(&mut run) {
                        milestone_failure = Some((name.to_string(), format!("milestone: {msg}")));
                    }
                }
                Ok((run.finish(), milestone_failure))
            },
        ));
        // The sink comes off the thread even when the scenario
        // panicked: whatever was traced up to the failure still lands
        // in the merged timeline.
        if let Some(master) = master_sink.as_mut() {
            if let Some(chrome) = fib_trace::take()
                .and_then(|s| s.into_any().downcast::<fib_trace::ChromeSink>().ok())
            {
                master.absorb(*chrome);
            }
        }
        let report = match guarded {
            Ok(Ok((report, milestone_failure))) => {
                if let Some((n, msg)) = milestone_failure {
                    eprintln!("[paper_demo] MILESTONE FAILURE: {msg}");
                    failures.push((n, msg));
                }
                report
            }
            Ok(Err((n, msg))) => {
                eprintln!("[{n}] {msg}");
                failures.push((n, msg));
                continue;
            }
            Err(payload) => {
                let msg = format!("panic: {}", panic_message(payload));
                eprintln!("[{name}] {msg}");
                failures.push((name.to_string(), msg));
                continue;
            }
        };

        // `[expect]` enforcement: the archived-find lifecycle's gate.
        // Violated bounds fail the suite exactly like a panic would.
        if let Some(expect) = &spec.expect {
            let violations = expect.check(&report);
            if violations.is_empty() {
                println!("[{name}] expectations hold");
            }
            for v in violations {
                eprintln!("[{name}] EXPECT FAILURE: {v}");
                failures.push((name.to_string(), v));
            }
        }

        let summary_path = results_dir().join(format!("scenario_{name}.csv"));
        std::fs::write(&summary_path, report.summary_csv()).expect("write summary csv");
        let trace_path = results_dir().join(format!("scenario_{name}_trace.csv"));
        std::fs::write(&trace_path, &report.trace_csv).expect("write trace csv");
        println!(
            "[{name}] seed {} · horizon {:.0}s · saved {} + trace\n",
            report.seed,
            report.horizon_secs,
            summary_path.display()
        );

        table.row(&[
            name.to_string(),
            report.routers.to_string(),
            report.links.to_string(),
            report.sessions.to_string(),
            f(report.max_util),
            f(report.mean_util),
            report.peak_lies.to_string(),
            report
                .reaction_secs
                .map(f)
                .unwrap_or_else(|| "-".to_string()),
            f(report.unroutable_flow_secs),
            report.qoe.stalls.to_string(),
            f(report.qoe.mean_score),
        ]);
    }
    table.emit("scenario_suite");
    if let (Some(out), Some(master)) = (&trace_out, &master_sink) {
        std::fs::write(out, master.to_json()).unwrap_or_else(|e| panic!("--trace-out {out}: {e}"));
        println!(
            "[saved {out}: {} trace events ({} audit records), {} dropped]",
            master.event_count(),
            master.audits().len(),
            master.dropped()
        );
    }
    println!("Reading: the controller-on scenarios hold max utilization near the");
    println!("optimizer budget and keep QoE high; the baseline saturates and");
    println!("stalls. Fault scripts (failures, brown-outs) show reaction times");
    println!("and the blackout seconds the IGP+controller could not hide.");
    if !failures.is_empty() {
        // One readable line for CI: every failed scenario and why,
        // instead of a count buried above pages of per-scenario
        // output.
        let summary: Vec<String> = failures
            .iter()
            .map(|(n, msg)| format!("{n} ({msg})"))
            .collect();
        eprintln!(
            "suite FAILED: {} scenario(s) failed: {}",
            failures.len(),
            summary.join("; ")
        );
        std::process::exit(1);
    }
}
