//! Regenerates Fig. 1 (panels a–d): paths, overload, lies, balance.
//!
//! Run: `cargo run -p fib-bench --bin fig1_paths`

use fib_bench::{f, Table};
use fibbing::demo::{link_name, name, paper_capacities, paper_topology, A, B, BLUE};
use fibbing::prelude::*;

fn load_table(title: &str, loads: &std::collections::BTreeMap<(RouterId, RouterId), f64>) -> Table {
    let mut t = Table::new(&[title, "load (relative units)"]);
    for ((from, to), l) in loads {
        t.row(&[link_name(*from, *to), f(*l)]);
    }
    t
}

fn main() {
    let topo = paper_topology();
    let demands = [
        Demand {
            src: A,
            prefix: BLUE,
            rate: 100.0,
        },
        Demand {
            src: B,
            prefix: BLUE,
            rate: 100.0,
        },
    ];
    let caps = paper_capacities(100.0);

    // --- Fig. 1a: shortest paths ------------------------------------
    println!("== Fig. 1a: IGP shortest paths toward the blue prefix ==\n");
    let mut t1a = Table::new(&["source", "equal-cost shortest paths", "cost"]);
    for src in [A, B] {
        let paths = enumerate_paths(&topo, src, BLUE, 8);
        let cost = compute_routes(&topo, src).route(BLUE).unwrap().dist;
        let rendered: Vec<String> = paths
            .iter()
            .map(|p| {
                p.iter()
                    .map(|r| name(*r).to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .collect();
        t1a.row(&[
            name(src).to_string(),
            rendered.join(" ; "),
            format!("{cost}"),
        ]);
    }
    t1a.emit("fig1a_paths");
    println!("(paths from A and B overlap along B-R2-C, as the caption says)\n");

    // --- Fig. 1b: overload ------------------------------------------
    println!("== Fig. 1b: data-plane loads during the surge (no Fibbing) ==\n");
    let loads_b = spread(&topo, &demands).expect("routable");
    load_table("link (Fig. 1b)", &loads_b).emit("fig1b_loads");
    println!(
        "max relative load: {} (capacity 100 → the B-R2-C links are overloaded)\n",
        f(max_utilization(&loads_b, &caps) * 100.0)
    );

    // --- Fig. 1c: the lies ------------------------------------------
    println!("== Fig. 1c: the augmentation Fibbing computes ==\n");
    let plan = plan_paths(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps, 0.5, 8).unwrap();
    let mut alloc = LieAllocator::new();
    let aug = augment(&topo, &plan.dag, &mut alloc).unwrap();
    let lies = reduce(&topo, &plan.dag, &aug.lies);
    let mut t1c = Table::new(&[
        "fake node",
        "attached to",
        "announces at cost",
        "resolves to",
    ]);
    for lie in &lies {
        t1c.row(&[
            format!("{}", lie.fake_id),
            name(lie.attach).to_string(),
            format!("{}", lie.cost_at_attach()),
            format!("{} (addr {})", name(lie.fw.router), lie.fw.addr),
        ]);
    }
    t1c.emit("fig1c_lies");
    let augmented = apply_all(&topo, &lies);
    println!(
        "B now has {} equal-cost slots; A has {} (1 via B + 2 via R1)\n",
        compute_routes(&augmented, B).nexthops(BLUE).len(),
        compute_routes(&augmented, A).nexthops(BLUE).len(),
    );

    // --- Fig. 1d: balanced loads ------------------------------------
    println!("== Fig. 1d: data-plane loads on the augmented topology ==\n");
    let loads_d = spread(&augmented, &demands).expect("routable");
    load_table("link (Fig. 1d)", &loads_d).emit("fig1d_loads");
    println!(
        "max relative load: {} — down from {} (the fractional optimum θ* = {})",
        f(max_utilization(&loads_d, &caps) * 100.0),
        f(max_utilization(&loads_b, &caps) * 100.0),
        f(min_max_theta(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps).unwrap() * 100.0),
    );
}
