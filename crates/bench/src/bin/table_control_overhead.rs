//! T1 — control-plane overhead of programming k extra paths
//! (Sec. 2's comparison, quantified).
//!
//! Scenario: an ingress router I must spread traffic over k extra
//! equal-cost paths to a sink S (beyond its single natural path).
//!
//! * Fibbing: k lies, injected live into the simulated IGP; we count
//!   the *measured* marginal control packets/bytes until quiescence.
//! * RSVP-TE: k+1 tunnels via the real CSPF/signalling module.
//! * Weight reconfiguration: the k weight changes that equalize the
//!   paths, with the disruption model (devices, LSAs, full SPFs).
//!
//! Run: `cargo run -p fib-bench --bin table_control_overhead`

use fib_bench::{f, Table};
use fib_te::prelude::*;
use fibbing::prelude::*;

const CAP: f64 = 1e8;

/// Build the k-path topology: I(1) – M_i(10+i) – S(2); path 0 has
/// cost 2, paths 1..=k cost 3 (Mi–S weight 2).
fn ladder_topology(k: u32) -> Topology {
    let mut t = Topology::new();
    let ingress = RouterId(1);
    let sink = RouterId(2);
    t.add_router(ingress);
    t.add_router(sink);
    for i in 0..=k {
        let mid = RouterId(10 + i);
        t.add_router(mid);
        t.add_link_sym(ingress, mid, Metric(1)).unwrap();
        t.add_link_sym(mid, sink, Metric(if i == 0 { 1 } else { 2 }))
            .unwrap();
    }
    t.announce_prefix(sink, Prefix::net24(1), Metric::ZERO)
        .unwrap();
    t
}

/// Measured Fibbing cost: marginal control packets/bytes to install k
/// lies network-wide (hello/keepalive background subtracted via a
/// twin run without injection), plus added FIB slots.
fn fibbing_cost(k: u32) -> (u64, u64, usize) {
    let run = |inject: bool| -> (u64, u64, usize) {
        let ingress = RouterId(1);
        let mut sim = Sim::new(SimConfig::default());
        let topo = ladder_topology(k);
        for r in topo.routers() {
            sim.add_router(r);
        }
        let mut seen = std::collections::BTreeSet::new();
        for (a, b, m) in topo.all_links() {
            let key = if a < b { (a, b) } else { (b, a) };
            if seen.insert(key) {
                sim.add_link(LinkSpec::new(a, b, m, CAP));
            }
        }
        sim.announce_prefix(RouterId(2), Prefix::net24(1));
        sim.add_controller_speaker(RouterId(99), RouterId(2));
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        let before = sim.stats();
        if inject {
            let mut api = sim.ctx();
            for i in 1..=k {
                api.inject_fake(
                    RouterId(99),
                    RouterId::fake(i),
                    ingress,
                    Metric(1),
                    Prefix::net24(1),
                    Metric(1),
                    FwAddr::secondary(RouterId(10 + i), 1),
                )
                .unwrap();
            }
        }
        sim.run_until(Timestamp::from_secs(25));
        let after = sim.stats();
        let slots = sim.ctx().fib_nexthops(ingress, Prefix::net24(1)).len();
        (
            after.ctrl_pkts - before.ctrl_pkts,
            after.ctrl_bytes - before.ctrl_bytes,
            slots,
        )
    };
    let (pkts, bytes, slots) = run(true);
    let (base_pkts, base_bytes, _) = run(false);
    (
        pkts.saturating_sub(base_pkts),
        bytes.saturating_sub(base_bytes),
        slots,
    )
}

fn main() {
    println!("== T1: control-plane cost of programming k extra paths ==\n");
    let mut t = Table::new(&[
        "k",
        "Fibbing pkts",
        "Fibbing bytes",
        "RSVP setup msgs",
        "RSVP refresh/s",
        "RSVP labels",
        "Weights: devices",
        "Weights: LSAs",
        "Weights: conv (s)",
    ]);
    for k in 1..=6u32 {
        // Fibbing, measured live (includes flooding acks + periodic
        // hellos during the convergence window).
        let (pkts, bytes, slots) = fibbing_cost(k);
        assert_eq!(slots as u32, k + 1, "lies must install k extra slots");

        // RSVP-TE: k+1 tunnels over distinct paths.
        let topo = ladder_topology(k);
        let caps = topo.all_links().map(|(a, b, _)| ((a, b), CAP)).collect();
        let mut rsvp = RsvpTe::new(topo.clone(), caps);
        for _ in 0..=k {
            rsvp.establish(RouterId(1), RouterId(2), CAP * 0.9)
                .expect("a free path remains");
        }
        let setup = rsvp.stats.path_msgs + rsvp.stats.resv_msgs;
        let refresh = rsvp.refresh_msgs_per_sec(Dur::from_secs(30));
        let labels = rsvp.stats.labels;

        // Weight reconfiguration: equalize the k slow paths.
        let mut after = topo.clone();
        for i in 1..=k {
            after
                .set_metric(RouterId(10 + i), RouterId(2), Metric(1))
                .unwrap();
            after
                .set_metric(RouterId(2), RouterId(10 + i), Metric(1))
                .unwrap();
        }
        let d = disruption(&topo, &after, Dur::from_secs(5), Dur::from_millis(250));

        t.row(&[
            k.to_string(),
            pkts.to_string(),
            bytes.to_string(),
            setup.to_string(),
            f(refresh),
            labels.to_string(),
            d.devices_reconfigured.to_string(),
            d.lsas_reoriginated.to_string(),
            f(d.est_convergence.as_secs_f64()),
        ]);
    }
    t.emit("table1_control_overhead");
    println!("Reading: Fibbing's cost is one flooded LSA per path (a few");
    println!("packets per link), stateless afterwards. RSVP pays per-hop");
    println!("signalling plus *continuous* refreshes and per-hop label state.");
    println!("Weight changes touch devices serially and re-run SPF everywhere.");
}
