//! T2 — data-plane overhead: Fibbing vs MPLS encapsulation and state
//! (Sec. 2's "no data-plane overhead" claim, quantified).
//!
//! Run: `cargo run -p fib-bench --bin table_dataplane_overhead`

use fib_bench::{f, Table};
use fib_te::prelude::*;
use fibbing::prelude::*;

fn main() {
    println!("== T2a: per-packet encapsulation overhead ==\n");
    let mut t = Table::new(&[
        "payload (B)",
        "Fibbing encap (B)",
        "MPLS encap (B)",
        "MPLS overhead %",
    ]);
    for pkt in [64u64, 576, 1500] {
        t.row(&[
            pkt.to_string(),
            "0".to_string(),
            LABEL_BYTES.to_string(),
            f(RsvpTe::encap_overhead_fraction(pkt) * 100.0),
        ]);
    }
    t.emit("table2a_encap");

    println!("== T2b: forwarding state for k extra paths (3-hop ladder) ==\n");
    let mut t2 = Table::new(&[
        "k",
        "Fibbing: extra FIB slots",
        "Fibbing: routers touched",
        "RSVP: soft-state blocks",
        "RSVP: labels",
        "RSVP: ingress split entries",
    ]);
    for k in 1..=6u32 {
        // Fibbing: k extra next-hop slots at exactly one router; no
        // other router's data plane changes (equal-cost lies are
        // side-effect-free — proven by the verifier in tests).
        let fib_slots = k;
        let fib_routers = 1;

        // RSVP: k+1 tunnels of 2 hops each on the ladder.
        let mut topo = Topology::new();
        let (ingress, sink) = (RouterId(1), RouterId(2));
        topo.add_router(ingress);
        topo.add_router(sink);
        for i in 0..=k {
            let mid = RouterId(10 + i);
            topo.add_router(mid);
            topo.add_link_sym(ingress, mid, Metric(1)).unwrap();
            topo.add_link_sym(mid, sink, Metric(1)).unwrap();
        }
        let caps = topo.all_links().map(|(a, b, _)| ((a, b), 1e8)).collect();
        let mut rsvp = RsvpTe::new(topo, caps);
        for _ in 0..=k {
            rsvp.establish(ingress, sink, 0.9e8).expect("path free");
        }
        t2.row(&[
            k.to_string(),
            fib_slots.to_string(),
            fib_routers.to_string(),
            rsvp.total_state().to_string(),
            rsvp.stats.labels.to_string(),
            (k + 1).to_string(),
        ]);
    }
    t2.emit("table2b_state");
    println!("Reading: Fibbing's only data-plane footprint is the extra ECMP");
    println!("slots at the steered router — packets stay plain IP. MPLS adds");
    println!("4 B to every packet plus per-hop label and soft state, and the");
    println!("ingress keeps a stateful split table across its tunnels.");
}
