//! Adversarial campaign driver: schedule exploration and scenario
//! fuzzing from the command line.
//!
//! Two modes, chosen by the positional argument:
//!
//! * `adversary explore --scenario paper_demo` — permute every batch
//!   of same-timestamp events inside `--window lo:hi` (default
//!   `14:16`, around the paper timeline's t=15 lie install):
//!   bounded-exhaustive permutation plans up to `--depth` decision
//!   points (at most `--perm-cap` permutations each, `--max-runs`
//!   total), then `--walks` seeded random walks. Every interleaving
//!   is checked for forwarding loops, blackout spikes, and stuck
//!   lies; **any violation exits nonzero**. The distinct-schedule
//!   digest is deterministic for a seed — CI double-runs the binary
//!   and byte-compares the JSON (wall-time keys masked).
//! * `adversary fuzz --scenario paper_demo --iters 32` — seeded
//!   mutation campaign over the scenario spec; finds are minimized
//!   by mutation-reversal and, with `--archive DIR`, serialized as
//!   replayable regression scenarios (`pin_seed = true` plus an
//!   `[expect]` stanza) that `scenario_suite --suite found` enforces.
//!
//! Shared flags: `--seed N`, `--horizon SECS` (shrink for faster
//! campaigns). Artifacts land in `results/BENCH_adversary.json`;
//! `wall_secs`/`per_sec` are the only non-deterministic keys.

use fib_adversary::prelude::*;
use fib_bench::cli::Cli;
use fib_bench::results_dir;
use fib_scenario::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

fn parse_window(s: &str) -> (f64, f64) {
    let parts: Vec<&str> = s.split(':').collect();
    let pair = (|| -> Option<(f64, f64)> {
        let [lo, hi] = parts.as_slice() else {
            return None;
        };
        let (lo, hi) = (lo.parse::<f64>().ok()?, hi.parse::<f64>().ok()?);
        (lo < hi).then_some((lo, hi))
    })();
    pair.unwrap_or_else(|| {
        eprintln!("--window expects `lo:hi` seconds with lo < hi, got `{s}`");
        std::process::exit(2);
    })
}

fn load(cli: &Cli) -> ScenarioSpec {
    let name = cli.get("scenario").unwrap_or("paper_demo");
    load_scenario(name).unwrap_or_else(|e| {
        eprintln!("cannot load scenario `{name}`: {e}");
        std::process::exit(2);
    })
}

fn write_json(body: String) {
    let path = results_dir().join("BENCH_adversary.json");
    std::fs::write(&path, body).expect("write BENCH json");
    println!("[saved {}]", path.display());
}

fn run_explore(cli: &Cli) {
    let spec = load(cli);
    let mut cfg = ExploreConfig {
        seed: cli.seed(ExploreConfig::default().seed),
        horizon_secs: cli.f64_flag("horizon"),
        ..ExploreConfig::default()
    };
    if let Some(w) = cli.get("window") {
        cfg.window = parse_window(w);
    }
    if let Some(d) = cli.u64_flag("depth") {
        cfg.max_depth = d as usize;
    }
    if let Some(p) = cli.u64_flag("perm-cap") {
        cfg.perm_cap = p.max(1);
    }
    if let Some(r) = cli.u64_flag("max-runs") {
        cfg.max_runs = (r as usize).max(1);
    }
    if let Some(w) = cli.u64_flag("walks") {
        cfg.walks = w as usize;
    }

    let wall = Instant::now();
    let out = explore(&spec, &cfg).unwrap_or_else(|e| {
        eprintln!("explore failed: {e}");
        std::process::exit(1);
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    eprintln!(
        "[adversary] {}: {} runs ({} exhaustive + {} walks), {} distinct \
         interleavings, {} decision point(s) deep, max batch {}, digest {:016x}",
        out.scenario,
        out.runs,
        out.exhaustive_runs,
        out.walk_runs,
        out.distinct,
        out.max_decisions,
        out.max_batch,
        out.digest
    );

    let mut json = String::from("{\n  \"bench\": \"adversary\",\n  \"mode\": \"explore\",\n");
    let _ = writeln!(json, "  \"scenario\": \"{}\",", out.scenario);
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(
        json,
        "  \"window\": [{:?}, {:?}],",
        out.window.0, out.window.1
    );
    let _ = writeln!(json, "  \"depth\": {},", cfg.max_depth);
    let _ = writeln!(json, "  \"perm_cap\": {},", cfg.perm_cap);
    let _ = writeln!(json, "  \"runs\": {},", out.runs);
    let _ = writeln!(json, "  \"exhaustive_runs\": {},", out.exhaustive_runs);
    let _ = writeln!(json, "  \"walk_runs\": {},", out.walk_runs);
    let _ = writeln!(json, "  \"distinct\": {},", out.distinct);
    let _ = writeln!(json, "  \"max_decisions\": {},", out.max_decisions);
    let _ = writeln!(json, "  \"max_batch\": {},", out.max_batch);
    let _ = writeln!(json, "  \"digest\": \"{:016x}\",", out.digest);
    let _ = writeln!(
        json,
        "  \"baseline_unroutable_flow_secs\": {:.6},",
        out.baseline.unroutable_flow_secs
    );
    let _ = writeln!(
        json,
        "  \"baseline_final_lies\": {},",
        out.baseline.final_lies
    );
    let _ = writeln!(
        json,
        "  \"baseline_fwd_loop_settles\": {},",
        out.baseline.fwd_loop_settles
    );
    let viols: Vec<String> = out
        .violations
        .iter()
        .map(|v| format!("    \"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if viols.is_empty() {
        let _ = writeln!(json, "  \"violations\": [],");
    } else {
        let _ = writeln!(json, "  \"violations\": [\n{}\n  ],", viols.join(",\n"));
    }
    let _ = writeln!(json, "  \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(
        json,
        "  \"per_sec\": {:.3}\n}}",
        out.runs as f64 / wall_secs.max(1e-9)
    );
    write_json(json);

    if !out.violations.is_empty() {
        eprintln!(
            "[adversary] {} invariant violation(s):",
            out.violations.len()
        );
        for v in &out.violations {
            eprintln!("[adversary]   FAIL {v}");
        }
        std::process::exit(1);
    }
    eprintln!("[adversary] all {} interleavings safe", out.distinct);
}

fn run_fuzz(cli: &Cli) {
    let spec = load(cli);
    let mut cfg = FuzzConfig {
        seed: cli.seed(FuzzConfig::default().seed),
        horizon_secs: cli.f64_flag("horizon"),
        ..FuzzConfig::default()
    };
    if let Some(i) = cli.u64_flag("iters") {
        cfg.iters = i as usize;
    }
    if let Some(m) = cli.u64_flag("mutations") {
        cfg.max_mutations = (m as usize).max(1);
    }
    if let Some(q) = cli.f64_flag("qoe-cliff") {
        cfg.qoe_cliff = q;
    }

    let wall = Instant::now();
    let out = fuzz(&spec, &cfg).unwrap_or_else(|e| {
        eprintln!("fuzz failed: {e}");
        std::process::exit(1);
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    eprintln!(
        "[adversary] {}: {} iters, {} sim runs, {} find(s), baseline QoE {:.3}",
        out.scenario,
        out.iters,
        out.runs,
        out.finds.len(),
        out.baseline_qoe
    );
    for f in &out.finds {
        eprintln!(
            "[adversary]   iter {:03} {}: {} mutation(s), qoe {:.3}, \
             unroutable {:.3}s, loops {}, final lies {}",
            f.iter,
            f.signal,
            f.mutations.len(),
            f.mean_qoe,
            f.unroutable_flow_secs,
            f.fwd_loop_settles,
            f.final_lies
        );
    }

    let mut archived = Vec::new();
    if let Some(dir) = cli.get("archive") {
        let dir = std::path::PathBuf::from(dir);
        for f in &out.finds {
            match archive_find(f, &out.scenario, &dir) {
                Ok(path) => {
                    eprintln!("[adversary]   archived {}", path.display());
                    archived.push(path);
                }
                Err(e) => {
                    eprintln!("cannot archive find {:03}: {e}", f.iter);
                    std::process::exit(1);
                }
            }
        }
    }

    let mut json = String::from("{\n  \"bench\": \"adversary\",\n  \"mode\": \"fuzz\",\n");
    let _ = writeln!(json, "  \"scenario\": \"{}\",", out.scenario);
    let _ = writeln!(json, "  \"seed\": {},", out.seed);
    let _ = writeln!(json, "  \"iters\": {},", out.iters);
    let _ = writeln!(json, "  \"runs\": {},", out.runs);
    let _ = writeln!(json, "  \"baseline_qoe\": {:.6},", out.baseline_qoe);
    let finds: Vec<String> = out
        .finds
        .iter()
        .map(|f| {
            format!(
                "    {{\"iter\": {}, \"signal\": \"{}\", \"mutations\": {}, \
                 \"mean_qoe\": {:.6}, \"unroutable_flow_secs\": {:.6}, \
                 \"fwd_loop_settles\": {}, \"final_lies\": {}}}",
                f.iter,
                f.signal,
                f.mutations.len(),
                f.mean_qoe,
                f.unroutable_flow_secs,
                f.fwd_loop_settles,
                f.final_lies
            )
        })
        .collect();
    if finds.is_empty() {
        let _ = writeln!(json, "  \"finds\": [],");
    } else {
        let _ = writeln!(json, "  \"finds\": [\n{}\n  ],", finds.join(",\n"));
    }
    let _ = writeln!(json, "  \"archived\": {},", archived.len());
    let _ = writeln!(json, "  \"wall_secs\": {wall_secs:.6},");
    let _ = writeln!(
        json,
        "  \"per_sec\": {:.3}\n}}",
        out.runs as f64 / wall_secs.max(1e-9)
    );
    write_json(json);
}

fn main() {
    let cli = Cli::from_env_with_positionals(
        &[
            "scenario",
            "window",
            "depth",
            "perm-cap",
            "max-runs",
            "walks",
            "seed",
            "horizon",
            "iters",
            "mutations",
            "qoe-cliff",
            "archive",
        ],
        &["explore|fuzz"],
    );
    match cli.positionals() {
        [mode] if mode == "explore" => run_explore(&cli),
        [mode] if mode == "fuzz" => run_fuzz(&cli),
        other => {
            eprintln!(
                "expected mode `explore` or `fuzz`, got `{}`",
                other.first().map(String::as_str).unwrap_or("")
            );
            std::process::exit(2);
        }
    }
}
