//! Wire codec benchmarks: encode/decode throughput of flooding-sized
//! LS Update packets (what bounds the controller's injection rate).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fib_igp::prelude::*;
use fib_igp::wire::{decode, encode, LsUpdate, Packet};

fn update_packet(n_lsas: u32) -> Packet {
    let lsas: Vec<Lsa> = (0..n_lsas)
        .map(|i| {
            if i % 2 == 0 {
                Lsa::router(
                    RouterId(i),
                    SeqNum(7),
                    (0..8)
                        .map(|j| fib_igp::lsa::LsaLink {
                            to: RouterId(100 + j),
                            metric: Metric(j + 1),
                        })
                        .collect(),
                )
            } else {
                Lsa::fake(
                    RouterId::fake(i),
                    SeqNum(3),
                    RouterId(i),
                    Metric(1),
                    Prefix::net24((i % 200) as u8),
                    Metric(1),
                    FwAddr::secondary(RouterId(i + 1), 1),
                )
            }
        })
        .collect();
    Packet::LsUpdate(LsUpdate { lsas })
}

fn bench_codec(c: &mut Criterion) {
    let pkt = update_packet(16);
    let encoded: Bytes = encode(&pkt, RouterId(1));
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_lsu16", |b| {
        b.iter(|| encode(&pkt, RouterId(1)));
    });
    g.bench_function("decode_lsu16", |b| {
        b.iter(|| decode(encoded.clone()).expect("valid"));
    });
    g.bench_function("fletcher16_1500B", |b| {
        let data = vec![0xa5u8; 1500];
        b.iter(|| fib_igp::wire::fletcher16(&data));
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
