//! Fluid allocator benchmarks: max-min fair allocation cost vs flow
//! count (what bounds the simulator's event throughput under churn).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fib_netsim::fluid::{max_min_allocation, FluidFlow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn workload(n_links: usize, n_flows: usize, seed: u64) -> (Vec<f64>, Vec<FluidFlow>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let caps: Vec<f64> = (0..n_links).map(|_| rng.gen_range(1e5..1e7)).collect();
    let flows: Vec<FluidFlow> = (0..n_flows)
        .map(|_| {
            let hops = rng.gen_range(1..=5usize);
            let mut links: Vec<usize> = (0..hops).map(|_| rng.gen_range(0..n_links)).collect();
            links.sort();
            links.dedup();
            FluidFlow {
                links,
                cap: if rng.gen_bool(0.5) {
                    Some(rng.gen_range(1e4..1e6))
                } else {
                    None
                },
            }
        })
        .collect();
    (caps, flows)
}

fn bench_fluid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_maxmin");
    g.sample_size(20);
    for n_flows in [10usize, 100, 500, 2000] {
        let (caps, flows) = workload(64, n_flows, 42);
        g.bench_with_input(
            BenchmarkId::from_parameter(n_flows),
            &(caps, flows),
            |b, (caps, flows)| {
                b.iter(|| max_min_allocation(caps, flows));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fluid);
criterion_main!(benches);
