//! SPF micro-benchmarks: full Dijkstra vs the partial route phase on
//! lie churn (the ablation behind Fibbing's low control-plane cost),
//! and scaling with topology size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fib_igp::builders::{attach_prefixes, random_connected};
use fib_igp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topo_with_lie(n: u32) -> (Topology, Topology) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut t = random_connected(&mut rng, n, n / 2, 8);
    let sinks: Vec<RouterId> = vec![RouterId(n)];
    attach_prefixes(&mut t, &sinks);
    let plain = t.clone();
    // One lie at router 1 pointing at its first neighbor.
    let nh = t.links(RouterId(1))[0].to;
    let dist = compute_routes(&t, RouterId(1))
        .route(Prefix::net24(1))
        .map(|r| r.dist)
        .unwrap_or(Metric(4));
    t.add_fake_node(
        RouterId::fake(0),
        FakeAttrs {
            attach: RouterId(1),
            attach_metric: Metric(1),
            prefix: Prefix::net24(1),
            prefix_metric: dist.sub(Metric(1)),
            fw: FwAddr::secondary(nh, 1),
        },
    )
    .unwrap();
    (plain, t)
}

fn bench_spf_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("spf_full");
    g.sample_size(20);
    for n in [20u32, 50, 100, 200] {
        let (t, _) = topo_with_lie(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| compute_routes(t, RouterId(1)));
        });
    }
    g.finish();
}

fn bench_partial_vs_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("spf_lie_churn");
    g.sample_size(20);
    let (plain, lied) = topo_with_lie(100);
    g.bench_function("full_recompute", |b| {
        b.iter(|| {
            // Cold engine: every lie churn pays a full Dijkstra.
            let mut e = SpfEngine::new();
            let _ = e.compute(&plain, RouterId(1));
            let _ = e.compute(&lied, RouterId(1));
        });
    });
    g.bench_function("partial_route_phase", |b| {
        // Warm engine: the real graph is unchanged by lies, so only
        // the route phase reruns.
        let mut e = SpfEngine::new();
        let _ = e.compute(&plain, RouterId(1));
        b.iter(|| {
            let _ = e.compute(&lied, RouterId(1));
        });
    });
    g.finish();
}

criterion_group!(benches, bench_spf_scaling, bench_partial_vs_full);
criterion_main!(benches);
