//! Augmentation and split-synthesis benchmarks: cost of computing
//! lies (equal-cost vs override-with-pins vs Simple) and of rounding
//! fractions to slots — the controller's per-reaction compute budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fib_core::prelude::*;
use fib_igp::builders::{attach_prefixes, random_connected};
use fib_igp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(n: u32) -> (Topology, WeightedDag) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut t = random_connected(&mut rng, n, n / 2, 4);
    attach_prefixes(&mut t, &[RouterId(n)]);
    let prefix = Prefix::net24(1);
    // Requirement: router 1 splits over up to two extra *downstream*
    // neighbors (strictly closer to the prefix, as optimizer-produced
    // plans are) with weight 2 each, on top of its natural hops.
    let natural = compute_routes(&t, RouterId(1));
    let my_dist = natural.route(prefix).expect("reachable").dist;
    let mut hops: Vec<(RouterId, u32)> = natural
        .nexthops(prefix)
        .iter()
        .map(|h| (h.router, 1))
        .collect();
    let downstream: Vec<RouterId> = t
        .links(RouterId(1))
        .iter()
        .map(|l| l.to)
        .filter(|nb| {
            compute_routes(&t, *nb)
                .route(prefix)
                .map(|r| r.dist < my_dist)
                .unwrap_or(false)
        })
        .collect();
    for nb in downstream.iter().take(2) {
        if !hops.iter().any(|(r, _)| r == nb) {
            hops.push((*nb, 2));
        }
    }
    let mut dag = WeightedDag::new(prefix);
    dag.require(RouterId(1), &hops);
    (t, dag)
}

fn bench_augment(c: &mut Criterion) {
    let mut g = c.benchmark_group("augment");
    g.sample_size(10);
    for n in [10u32, 25, 50] {
        let (t, dag) = scenario(n);
        g.bench_with_input(BenchmarkId::new("plan", n), &(t, dag), |b, (t, dag)| {
            b.iter(|| {
                let mut alloc = LieAllocator::new();
                augment(t, dag, &mut alloc).expect("realizable")
            });
        });
    }
    g.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("augment_reduce");
    g.sample_size(10);
    let (t, dag) = scenario(25);
    let mut alloc = LieAllocator::new();
    let plan = augment(&t, &dag, &mut alloc).expect("realizable");
    g.bench_function("merger_style_reduce_n25", |b| {
        b.iter(|| reduce(&t, &dag, &plan.lies));
    });
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_synthesis");
    let fractions = [0.123, 0.456, 0.421];
    for budget in [8u32, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, budget| {
            b.iter(|| plan_split(&fractions, *budget).expect("valid"));
        });
    }
    g.finish();
}

fn bench_minmax(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    g.sample_size(10);
    for n in [10u32, 25] {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = random_connected(&mut rng, n, n / 2, 4);
        attach_prefixes(&mut t, &[RouterId(n)]);
        let caps = t.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        let demands = vec![(RouterId(1), 150.0), (RouterId(2), 120.0)];
        g.bench_with_input(
            BenchmarkId::new("plan_paths", n),
            &(t, caps, demands),
            |b, (t, caps, demands)| {
                b.iter(|| {
                    plan_paths(t, Prefix::net24(1), demands, caps, 0.7, 8).expect("feasible")
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_augment,
    bench_reduce,
    bench_split,
    bench_minmax
);
criterion_main!(benches);
