//! Protocol-level benchmarks: cold-start convergence of the full IGP
//! (adjacencies, database exchange, flooding, SPF) and end-to-end
//! lie propagation latency — the wall-clock cost behind the demo's
//! reaction time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fib_igp::harness::Harness;
use fib_igp::prelude::*;

fn line_harness(n: u32) -> Harness {
    let mut h = Harness::new();
    for i in 1..=n {
        h.add_router(RouterId(i));
    }
    for i in 1..n {
        h.connect(RouterId(i), RouterId(i + 1), Metric(1), Dur::from_millis(1));
    }
    h.instance_mut(RouterId(n))
        .announce(Prefix::net24(1), Metric::ZERO);
    h
}

fn bench_cold_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("igp_cold_convergence");
    g.sample_size(10);
    for n in [5u32, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut h = line_harness(n);
                h.start_all();
                assert!(h.run_until_converged(Timestamp::from_secs(60)));
                h.delivered
            });
        });
    }
    g.finish();
}

fn bench_lie_propagation(c: &mut Criterion) {
    let mut g = c.benchmark_group("lie_propagation");
    g.sample_size(10);
    g.bench_function("inject_to_quiescent_line10", |b| {
        b.iter_with_setup(
            || {
                let mut h = line_harness(10);
                h.start_all();
                assert!(h.run_until_converged(Timestamp::from_secs(60)));
                h
            },
            |mut h| {
                h.instance_mut(RouterId(1))
                    .inject_fake(
                        RouterId::fake(0),
                        RouterId(5),
                        Metric(1),
                        Prefix::net24(1),
                        Metric(1),
                        FwAddr::primary(RouterId(6)),
                    )
                    .unwrap();
                let t = h.now();
                assert!(h.run_until_converged(t + Dur::from_secs(30)));
                h.delivered
            },
        );
    });
    g.finish();
}

criterion_group!(benches, bench_cold_convergence, bench_lie_propagation);
criterion_main!(benches);
